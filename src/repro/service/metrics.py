"""Service-level counters: the operational dashboard of the selection service.

Plain integer counters updated by :class:`~repro.service.SelectionService`
as requests flow through, merged with live gauges from the snapshot cache
and the reservation ledger at :meth:`ServiceMetrics.snapshot` time.
Surfaced by ``repro-serve`` and ``benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceMetrics"]


@dataclass
class ServiceMetrics:
    """Counters over the life of one :class:`~repro.service.SelectionService`."""

    requests: int = 0
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    released: int = 0
    renewed: int = 0
    #: Leases reclaimed because the holder stopped renewing.
    expired: int = 0
    #: Leases reclaimed because a fault event crashed a reserved node.
    evicted: int = 0
    #: Queued requests admitted later, when capacity freed up.
    admitted_from_queue: int = 0
    #: Queued requests displaced by higher-priority arrivals.
    queue_displaced: int = 0
    #: Live gauges merged in by :meth:`snapshot`.
    extras: dict = field(default_factory=dict)

    def snapshot(self, cache=None, ledger=None, queue=None) -> dict:
        """All counters plus live cache/ledger/queue gauges, one flat dict."""
        out = {
            "requests": self.requests,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "released": self.released,
            "renewed": self.renewed,
            "expired": self.expired,
            "evicted": self.evicted,
            "admitted_from_queue": self.admitted_from_queue,
            "queue_displaced": self.queue_displaced,
        }
        if queue is not None:
            out["queue_depth"] = len(queue)
        if cache is not None:
            out["cache_hits"] = cache.hits
            out["cache_misses"] = cache.misses
            out["cache_coalesced"] = cache.coalesced
            out["cache_invalidations"] = cache.invalidations
            out["snapshot_sweeps"] = cache.sweeps
        if ledger is not None:
            out.update(ledger.utilization())
        out.update(self.extras)
        return out

    def format(self, cache=None, ledger=None, queue=None) -> str:
        """Human-readable block (``repro-serve`` text output)."""
        snap = self.snapshot(cache=cache, ledger=ledger, queue=queue)
        width = max(len(k) for k in snap)
        lines = []
        for key, value in snap.items():
            if isinstance(value, float):
                lines.append(f"{key:<{width}} : {value:.3f}")
            else:
                lines.append(f"{key:<{width}} : {value}")
        return "\n".join(lines)
