"""Service-level counters: the operational dashboard of the selection service.

Plain integer counters updated by :class:`~repro.service.SelectionService`
as requests flow through, merged with live gauges from the snapshot cache
and the reservation ledger at :meth:`ServiceMetrics.snapshot` time.
Surfaced by ``repro-serve`` and ``benchmarks/bench_service_throughput.py``.

:class:`StageTimer` adds the profiling layer: the service wraps each
admission stage (snapshot fetch, residual view, select, claim-verify,
ledger commit) in a timer, and :meth:`ServiceMetrics.snapshot` reports
per-stage p50/p95/p99 latencies so a regression in any one stage is
visible without re-running a profiler (``repro-serve --profile``,
``benchmarks/bench_service_hotpath.py``).

Both classes are kept as thin, fast adapters over plain Python numbers;
:meth:`ServiceMetrics.bind` re-exports every counter into a
:class:`repro.obs.MetricsRegistry` via callback-backed instruments and
mirrors stage timings into labelled histograms, so the unified
``repro_service_*`` metrics surface costs the hot path nothing beyond
one histogram observe per stage.

The flat JSON schema of :meth:`ServiceMetrics.snapshot` is **frozen**
(DESIGN.md "ServiceMetrics snapshot schema"); ``repro-serve --format
json`` consumers parse it.  Extending it is fine, renaming or removing
keys is a breaking change guarded by
``tests/service/test_metrics_schema.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceMetrics", "StageTimer"]

#: Ring-buffer size for percentile windows.  Large enough that p99 over a
#: benchmark run is meaningful, small enough that a long-lived service
#: never grows unboundedly.
_WINDOW = 4096


class StageTimer:
    """Latency accumulator for one pipeline stage.

    Keeps exact ``count``/``total_s`` over the timer's whole life plus a
    sliding window of the last :data:`_WINDOW` samples for percentiles.
    Durations are observed in seconds and reported in microseconds (the
    hot path's natural unit).
    """

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self._window: list[float] = []
        self._next = 0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if len(self._window) < _WINDOW:
            self._window.append(seconds)
        else:
            self._window[self._next] = seconds
            self._next = (self._next + 1) % _WINDOW

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile over a pre-sorted sample."""
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict:
        """``{count, mean_us, p50_us, p95_us, p99_us}`` over the window."""
        if not self.count:
            return {
                "count": 0, "mean_us": 0.0,
                "p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0,
            }
        ordered = sorted(self._window)
        return {
            "count": self.count,
            "mean_us": self.total_s / self.count * 1e6,
            "p50_us": self._percentile(ordered, 0.50) * 1e6,
            "p95_us": self._percentile(ordered, 0.95) * 1e6,
            "p99_us": self._percentile(ordered, 0.99) * 1e6,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StageTimer n={self.count} total={self.total_s * 1e3:.3f}ms>"


#: Admission-pipeline stage names, in execution order.
STAGES = (
    "snapshot_fetch",
    "residual_view",
    "select",
    "claim_verify",
    "ledger_commit",
)


@dataclass
class ServiceMetrics:
    """Counters over the life of one :class:`~repro.service.SelectionService`."""

    requests: int = 0
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    released: int = 0
    renewed: int = 0
    #: Leases reclaimed because the holder stopped renewing.
    expired: int = 0
    #: Leases reclaimed because a fault event crashed a reserved node.
    evicted: int = 0
    #: Leases preempted (immediately or clamped to a grace deadline) to
    #: admit an otherwise-infeasible gold request.
    preempted: int = 0
    #: Queued requests admitted later, when capacity freed up.
    admitted_from_queue: int = 0
    #: Queued requests displaced by higher-priority arrivals.
    queue_displaced: int = 0
    #: Queued requests *not* re-attempted because no capacity was
    #: returned since their last failed attempt (residual-epoch gate).
    drain_skipped: int = 0
    #: Residual overlays rebuilt because the snapshot epoch moved.
    view_rebuilds: int = 0
    #: Admission attempts answered from the per-view selection memo.
    select_memo_hits: int = 0
    #: Subset of :attr:`select_memo_hits` answered by the *negative*
    #: cache (a memoized infeasibility, not a memoized placement).
    select_memo_negative_hits: int = 0
    #: Requests a :class:`~repro.service.ShardRouter` admitted wholly
    #: inside one shard (always 0 on an unsharded service).
    routed_local: int = 0
    #: Requests admitted across shards via the trunk.
    routed_cross: int = 0
    #: Cross-shard requests refused for trunk capacity.
    trunk_rejections: int = 0
    #: ``admit_batch`` calls (each amortizes one snapshot fetch + peel
    #: schedule across the whole arrival batch).
    batches: int = 0
    #: Individual requests that arrived inside a batch.
    batch_requests: int = 0
    #: Batch requests placed by the greedy batch planner (the amortized
    #: fast path, vs a full serial admission pipeline run).
    batch_planned: int = 0
    #: Batch requests the planner could not place that fell back to the
    #: exact serial admission pipeline.
    batch_fallbacks: int = 0
    #: Collector push events (staleness transitions) received.
    push_events: int = 0
    #: Live leases proactively migrated off degrading nodes.
    migrations: int = 0
    #: Preempted-lease counts keyed by the victim's priority class
    #: (feeds ``repro_service_preemptions_total{class=...}``; not part
    #: of the flat snapshot schema).
    preempted_by_class: dict = field(default_factory=dict)
    #: Per-stage latency timers (see :data:`STAGES`), populated lazily.
    stages: dict = field(default_factory=dict)
    #: Live gauges merged in by :meth:`snapshot`.
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Registry mirror state; None until bind() is called.
        self._registry = None
        self._stage_histograms: dict = {}

    def bind(self, registry) -> None:
        """Re-export every counter into ``registry`` (callback-backed).

        The integer attributes stay the write path — producers keep
        bumping plain ints — and the registry reads them at collection
        time.  Stage durations additionally feed
        ``repro_service_stage_duration_seconds{stage=...}`` histograms
        from :meth:`observe_stage` onward.
        """
        self._registry = registry
        help_by_name = {
            "requests": "Selection requests received.",
            "admitted": "Requests granted a reservation.",
            "queued": "Requests parked in the admission queue.",
            "rejected": "Requests rejected outright.",
            "released": "Leases released by their holder.",
            "renewed": "Lease renewals.",
            "expired": "Leases reclaimed after missed renewals.",
            "evicted": "Leases reclaimed because a reserved node crashed.",
            "preempted": "Leases preempted for gold admissions.",
            "admitted_from_queue": "Queued requests admitted later.",
            "queue_displaced": "Queued requests displaced by priority.",
            "drain_skipped": "Queue drains skipped by the epoch gate.",
            "view_rebuilds": "Residual-view rebuilds.",
            "select_memo_hits": "Admissions answered from the selection memo.",
            "select_memo_negative_hits": (
                "Selection-memo hits on memoized infeasibility."
            ),
            "routed_local": "Requests admitted wholly inside one shard.",
            "routed_cross": "Requests admitted across shards via the trunk.",
            "trunk_rejections": (
                "Cross-shard requests refused for trunk capacity."
            ),
            "batches": "admit_batch calls (arrival batches admitted).",
            "batch_requests": "Requests that arrived inside a batch.",
            "batch_planned": (
                "Batch requests placed by the greedy batch planner."
            ),
            "batch_fallbacks": (
                "Batch requests that fell back to serial admission."
            ),
            "push_events": "Collector staleness push events received.",
            "migrations": (
                "Leases proactively migrated off degrading nodes."
            ),
        }
        for attr, help_text in help_by_name.items():
            registry.counter(
                f"repro_service_{attr}_total", help_text,
                fn=(lambda a=attr: float(getattr(self, a))),
            )
        for name, timer in self.stages.items():
            self._stage_histograms[name] = self._stage_histogram(name)
            # Samples observed before bind() are summarized, not replayed;
            # only count/sum carry over is skipped deliberately — the
            # histogram documents post-bind behaviour.

    def _stage_histogram(self, name: str):
        return self._registry.histogram(
            "repro_service_stage_duration_seconds",
            "Admission pipeline stage latency.",
            labels={"stage": name},
        )

    def observe_stage(self, name: str, seconds: float) -> None:
        """Record one duration for pipeline stage ``name``."""
        timer = self.stages.get(name)
        if timer is None:
            timer = self.stages[name] = StageTimer()
        timer.observe(seconds)
        if self._registry is not None:
            hist = self._stage_histograms.get(name)
            if hist is None:
                hist = self._stage_histograms[name] = (
                    self._stage_histogram(name)
                )
            hist.observe(seconds)

    def stage_summaries(self) -> dict:
        """``{stage: {count, mean_us, p50_us, p95_us, p99_us}}``, in
        pipeline order (unknown stages appended alphabetically)."""
        ordered = [s for s in STAGES if s in self.stages]
        ordered += sorted(set(self.stages) - set(STAGES))
        return {name: self.stages[name].summary() for name in ordered}

    def snapshot(self, cache=None, ledger=None, queue=None,
                 slo=None) -> dict:
        """All counters plus live cache/ledger/queue gauges, one flat dict
        (stage-timer histograms nested under ``"stages"``; an SLO
        evaluation — :meth:`repro.obs.slo.SloMonitor.evaluate` — nests
        under ``"slo"`` when the caller passes one)."""
        out = {
            "requests": self.requests,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "released": self.released,
            "renewed": self.renewed,
            "expired": self.expired,
            "evicted": self.evicted,
            "preempted": self.preempted,
            "admitted_from_queue": self.admitted_from_queue,
            "queue_displaced": self.queue_displaced,
            "drain_skipped": self.drain_skipped,
            "view_rebuilds": self.view_rebuilds,
            "select_memo_hits": self.select_memo_hits,
            "select_memo_negative_hits": self.select_memo_negative_hits,
            "routed_local": self.routed_local,
            "routed_cross": self.routed_cross,
            "trunk_rejections": self.trunk_rejections,
            "batches": self.batches,
            "batch_requests": self.batch_requests,
            "batch_planned": self.batch_planned,
            "batch_fallbacks": self.batch_fallbacks,
            "push_events": self.push_events,
            "migrations": self.migrations,
        }
        if queue is not None:
            out["queue_depth"] = len(queue)
        if cache is not None:
            out["cache_hits"] = cache.hits
            out["cache_misses"] = cache.misses
            out["cache_coalesced"] = cache.coalesced
            out["cache_invalidations"] = cache.invalidations
            out["snapshot_sweeps"] = cache.sweeps
        if ledger is not None:
            out.update(ledger.utilization())
        out.update(self.extras)
        if slo is not None:
            out["slo"] = slo
        if self.stages:
            out["stages"] = self.stage_summaries()
        return out

    def format(self, cache=None, ledger=None, queue=None,
               include_stages: bool = False) -> str:
        """Human-readable block (``repro-serve`` text output).

        ``include_stages`` appends the per-stage latency table
        (``repro-serve --profile``).
        """
        snap = self.snapshot(cache=cache, ledger=ledger, queue=queue)
        snap.pop("stages", None)
        width = max(len(k) for k in snap)
        lines = []
        for key, value in snap.items():
            if isinstance(value, float):
                lines.append(f"{key:<{width}} : {value:.3f}")
            else:
                lines.append(f"{key:<{width}} : {value}")
        if include_stages and self.stages:
            lines.append("")
            lines.append("stage latencies (us)")
            header = (
                f"{'stage':<16} {'count':>8} {'mean':>10} "
                f"{'p50':>10} {'p95':>10} {'p99':>10}"
            )
            lines.append(header)
            for name, s in self.stage_summaries().items():
                lines.append(
                    f"{name:<16} {s['count']:>8} {s['mean_us']:>10.1f} "
                    f"{s['p50_us']:>10.1f} {s['p95_us']:>10.1f} "
                    f"{s['p99_us']:>10.1f}"
                )
        return "\n".join(lines)
