"""The multi-tenant selection service (beyond the paper's one-shot library).

The paper frames node selection as a service applications call on a
*shared* network (§3.3 even excludes an application's own load so it can
re-select while running), but a library answering one ``select()`` at a
time would hand two concurrent applications the same "best" nodes.  This
subpackage is the long-running layer that makes concurrent use sound:

- :class:`ReservationLedger` — per-application CPU and bandwidth claims,
  debited from every snapshot (:meth:`ReservationLedger.apply`) so
  selection always runs on *residual* capacity; leases expire, renew,
  release, and are evicted on node crashes.
- :mod:`~repro.service.admission` — priority classes
  (:class:`Priority`), a bounded request queue (:class:`AdmissionQueue`),
  and explicit admit/queue/reject outcomes (:class:`Decision`) instead of
  silent degradation.
- :class:`SnapshotCache` — TTL memoization plus same-instant coalescing
  of the expensive Remos topology sweep, invalidated on fault events;
  its :attr:`~SnapshotCache.epoch` keys the hot path's memoization.
- :class:`ResidualView` — the O(Δ) mutable residual overlay the ledger
  updates in place, carrying per-epoch :class:`RouteCache` and
  :class:`PeelScheduleCache` memoization for the selection kernel;
  bit-identical to a from-scratch rebuild by construction.
- :class:`SelectionService` — the facade wiring it all to a
  :class:`~repro.core.NodeSelector`; :class:`ServiceMetrics` counts
  requests, admissions, rejections, queue depth, cache hits and ledger
  utilization, and profiles the admission pipeline per stage
  (:class:`StageTimer`).  ``repro-serve`` (:mod:`repro.service.cli`)
  drives it from serialized topologies and workload files.
"""

from .admission import AdmissionQueue, Decision, Priority, SelectionRequest
from .cache import PeelScheduleCache, RouteCache, SnapshotCache
from .ledger import LedgerError, Reservation, ReservationLedger, route_edges
from .metrics import ServiceMetrics, StageTimer
from .residual_view import ResidualView
from .service import Grant, SelectionService

__all__ = [
    "AdmissionQueue",
    "Decision",
    "Grant",
    "LedgerError",
    "PeelScheduleCache",
    "Priority",
    "Reservation",
    "ReservationLedger",
    "ResidualView",
    "RouteCache",
    "SelectionRequest",
    "SelectionService",
    "ServiceMetrics",
    "SnapshotCache",
    "StageTimer",
    "route_edges",
]
