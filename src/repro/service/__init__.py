"""The multi-tenant selection service (beyond the paper's one-shot library).

The paper frames node selection as a service applications call on a
*shared* network (§3.3 even excludes an application's own load so it can
re-select while running), but a library answering one ``select()`` at a
time would hand two concurrent applications the same "best" nodes.  This
subpackage is the long-running layer that makes concurrent use sound:

- :class:`ReservationLedger` — per-application CPU and bandwidth claims,
  debited from every snapshot (:meth:`ReservationLedger.apply`) so
  selection always runs on *residual* capacity; leases expire, renew,
  release, and are evicted on node crashes.
- :mod:`~repro.service.admission` — priority classes
  (:class:`Priority`), a bounded request queue (:class:`AdmissionQueue`),
  and explicit admit/queue/reject outcomes (:class:`Decision`) instead of
  silent degradation.
- :class:`SnapshotCache` — TTL memoization plus same-instant coalescing
  of the expensive Remos topology sweep, invalidated on fault events;
  its :attr:`~SnapshotCache.epoch` keys the hot path's memoization.
- :class:`ResidualView` — the O(Δ) mutable residual overlay the ledger
  updates in place, carrying per-epoch :class:`RouteCache` and
  :class:`PeelScheduleCache` memoization for the selection kernel;
  bit-identical to a from-scratch rebuild by construction.
- :class:`LedgerWal` (:mod:`repro.service.wal`) — durability: a JSONL
  write-ahead log of every ledger mutation plus periodic compacted
  snapshots, replayed by :meth:`ReservationLedger.recover` into a
  bit-identical ledger after a crash (:class:`RecoveryReport` says what
  was restored; :class:`WalCorruptError` refuses unreplayable damage).
- :class:`SelectionService` — the facade wiring it all to a
  :class:`~repro.core.NodeSelector`; :class:`ServiceMetrics` counts
  requests, admissions, rejections, preemptions, queue depth, cache hits
  and ledger utilization, and profiles the admission pipeline per stage
  (:class:`StageTimer`).  ``repro-serve`` (:mod:`repro.service.cli`)
  drives it from serialized topologies and workload files, durably when
  given ``--state-dir``.
"""

from .admission import AdmissionQueue, Decision, Priority, SelectionRequest
from .api import BatchRequest, PlacementBackend, PlacementGrant, iter_batch
from .cache import PeelScheduleCache, RouteCache, SnapshotCache
from .ledger import (
    CAPACITY_RETURNING_KINDS,
    LedgerError,
    Reservation,
    ReservationLedger,
    route_edges,
)
from .metrics import ServiceMetrics, StageTimer
from .residual_view import ResidualView
from .service import Grant, SelectionService
from .sharding import (
    ShardGrant,
    ShardPlan,
    ShardRouter,
    ShardWorkerPool,
    TrunkLedger,
    WorkerCrashError,
    partition_topology,
    repartition,
)
from .wal import LedgerWal, RecoveryReport, WalCorruptError, WalError

__all__ = [
    "AdmissionQueue",
    "BatchRequest",
    "CAPACITY_RETURNING_KINDS",
    "Decision",
    "Grant",
    "PlacementBackend",
    "PlacementGrant",
    "LedgerError",
    "LedgerWal",
    "PeelScheduleCache",
    "Priority",
    "RecoveryReport",
    "Reservation",
    "ReservationLedger",
    "ResidualView",
    "RouteCache",
    "SelectionRequest",
    "SelectionService",
    "ServiceMetrics",
    "ShardGrant",
    "ShardPlan",
    "ShardRouter",
    "ShardWorkerPool",
    "SnapshotCache",
    "StageTimer",
    "TrunkLedger",
    "WalCorruptError",
    "WorkerCrashError",
    "WalError",
    "iter_batch",
    "partition_topology",
    "repartition",
    "route_edges",
]
