"""Snapshot caching and request coalescing for Remos topology queries.

A Remos topology query is a full sweep: every host's load history and
every link's counter history pass through the predictor
(:meth:`repro.remos.api.RemosAPI.topology`).  A service fielding a burst
of selection requests cannot afford N sweeps for N requests when the
underlying measurements only change once per collector poll period.

:class:`SnapshotCache` memoizes the provider's snapshot with a TTL and
exposes the same ``topology()`` protocol, so it drops transparently in
front of a :class:`~repro.core.NodeSelector`:

- requests within ``ttl`` of the last sweep share it (**hits**);
- requests at the *same instant* as the last sweep share it even with
  ``ttl=0`` (**coalescing** — a simultaneous burst is one sweep by
  definition, caching disabled or not);
- :meth:`invalidate` drops the snapshot immediately; the selection
  service wires it to fault/recovery events so a crash never serves a
  pre-crash snapshot for up to a TTL.

Callers must treat the returned graph as shared and immutable — debit
views (:meth:`repro.service.ReservationLedger.apply`) copy it anyway.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import TopologyGraph

__all__ = ["SnapshotCache"]


class SnapshotCache:
    """A TTL + coalescing cache in front of any topology provider.

    Parameters
    ----------
    provider:
        Anything with a ``topology() -> TopologyGraph`` method.
    ttl:
        Seconds a snapshot stays fresh (0 disables caching but keeps
        same-instant coalescing).
    clock:
        Time source (the service passes simulated time; defaults would be
        meaningless here, so it is required).
    """

    def __init__(
        self,
        provider,
        ttl: float,
        clock: Callable[[], float],
    ) -> None:
        if ttl < 0:
            raise ValueError(f"ttl cannot be negative: {ttl}")
        self.provider = provider
        self.ttl = float(ttl)
        self.clock = clock
        self._graph: Optional[TopologyGraph] = None
        self._taken_at = float("-inf")
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.invalidations = 0
        #: Sweeps actually forwarded to the provider (== misses; kept as a
        #: separate counter so reports read naturally).
        self.sweeps = 0

    def topology(self) -> TopologyGraph:
        """The cached snapshot, refreshed via the provider when stale."""
        now = self.clock()
        if self._graph is not None:
            age = now - self._taken_at
            if age == 0.0 and self.ttl == 0.0:
                self.hits += 1
                self.coalesced += 1
                return self._graph
            if age <= self.ttl:
                self.hits += 1
                if age == 0.0:
                    self.coalesced += 1
                return self._graph
        self.misses += 1
        self.sweeps += 1
        self._graph = self.provider.topology()
        self._taken_at = now
        return self._graph

    def invalidate(self) -> None:
        """Drop the cached snapshot (next query sweeps afresh)."""
        if self._graph is not None:
            self._graph = None
            self._taken_at = float("-inf")
            self.invalidations += 1

    @property
    def age(self) -> float:
        """Seconds since the cached snapshot was taken (inf when empty)."""
        if self._graph is None:
            return float("inf")
        return self.clock() - self._taken_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SnapshotCache ttl={self.ttl:g}s hits={self.hits} "
            f"misses={self.misses} coalesced={self.coalesced}>"
        )
