"""Snapshot caching and epoch-keyed memoization for the selection service.

A Remos topology query is a full sweep: every host's load history and
every link's counter history pass through the predictor
(:meth:`repro.remos.api.RemosAPI.topology`).  A service fielding a burst
of selection requests cannot afford N sweeps for N requests when the
underlying measurements only change once per collector poll period.

:class:`SnapshotCache` memoizes the provider's snapshot with a TTL and
exposes the same ``topology()`` protocol, so it drops transparently in
front of a :class:`~repro.core.NodeSelector`:

- requests within ``ttl`` of the last sweep share it (**hits**);
- requests at the *same instant* as the last sweep share it even with
  ``ttl=0`` (**coalescing** — a simultaneous burst is one sweep by
  definition, caching disabled or not);
- :meth:`invalidate` drops the snapshot immediately; the selection
  service wires it to fault/recovery events so a crash never serves a
  pre-crash snapshot for up to a TTL.

Every sweep and every invalidation advances :attr:`SnapshotCache.epoch`,
the generation counter the rest of the hot path keys its memoization on:
:class:`RouteCache` (routed channel sets per node set — pure topology
*structure*, unchanged by capacity claims) and :class:`PeelScheduleCache`
(the kernel's pre-sorted peel schedules, reused across requests with
claim-touched edges re-merged as a delta).  Both live exactly as long as
one snapshot epoch: the service rebuilds them whenever the epoch moves,
which is precisely when a TTL refresh sweeps or a fault event fires.

Callers must treat the returned graph as shared and immutable — debit
views (:class:`repro.service.ResidualView`) copy it anyway.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Collection, Optional, Sequence

from ..core.kernel import peel_order
from ..core.metrics import References
from ..obs.trace import NULL_TRACER
from ..topology.graph import Link, TopologyGraph
from ..topology.residual import DirectedEdge
from ..topology.routing import RoutingTable

__all__ = ["PeelScheduleCache", "RouteCache", "SnapshotCache"]


class SnapshotCache:
    """A TTL + coalescing cache in front of any topology provider.

    Parameters
    ----------
    provider:
        Anything with a ``topology() -> TopologyGraph`` method.
    ttl:
        Seconds a snapshot stays fresh (0 disables caching but keeps
        same-instant coalescing).
    clock:
        Time source (the service passes simulated time; defaults would be
        meaningless here, so it is required).
    """

    def __init__(
        self,
        provider,
        ttl: float,
        clock: Callable[[], float],
        tracer=None,
    ) -> None:
        if ttl < 0:
            raise ValueError(f"ttl cannot be negative: {ttl}")
        self.provider = provider
        self.ttl = float(ttl)
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._graph: Optional[TopologyGraph] = None
        self._taken_at = float("-inf")
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.invalidations = 0
        #: Sweeps actually forwarded to the provider (== misses; kept as a
        #: separate counter so reports read naturally).
        self.sweeps = 0
        #: Snapshot generation: advances on every sweep and invalidation.
        #: Anything memoized against a snapshot (residual overlays, route
        #: and peel-schedule caches) revalidates when this moves.
        self.epoch = 0

    def topology(self) -> TopologyGraph:
        """The cached snapshot, refreshed via the provider when stale."""
        now = self.clock()
        if self._graph is not None:
            age = now - self._taken_at
            if age == 0.0 and self.ttl == 0.0:
                self.hits += 1
                self.coalesced += 1
                return self._graph
            if age <= self.ttl:
                self.hits += 1
                if age == 0.0:
                    self.coalesced += 1
                return self._graph
        self.misses += 1
        self.sweeps += 1
        self.epoch += 1
        if self.tracer.enabled:
            with self.tracer.span("snapshot.sweep", epoch=self.epoch):
                self._graph = self.provider.topology()
        else:
            self._graph = self.provider.topology()
        self._taken_at = now
        return self._graph

    def invalidate(self) -> None:
        """Drop the cached snapshot (next query sweeps afresh)."""
        if self._graph is not None:
            self._graph = None
            self._taken_at = float("-inf")
            self.invalidations += 1
            self.epoch += 1

    @property
    def age(self) -> float:
        """Seconds since the cached snapshot was taken (inf when empty)."""
        if self._graph is None:
            return float("inf")
        return self.clock() - self._taken_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SnapshotCache ttl={self.ttl:g}s hits={self.hits} "
            f"misses={self.misses} coalesced={self.coalesced}>"
        )


class RouteCache:
    """Memoized routed channel sets for one snapshot epoch.

    :func:`repro.service.route_edges` runs one BFS per ordered node pair —
    O(m² · (V+E)) per admission attempt, and the service used to pay it
    twice (claim verification, then again inside ``reserve``).  Routes
    depend only on topology *structure*, which capacity claims never touch,
    so within a snapshot epoch every pairwise path is computed at most
    once and every node *set* resolves to its channel union from the
    per-pair memo.

    The cache answers for any graph sharing the base snapshot's structure
    (the residual overlay is a same-structure copy); the service discards
    it with the overlay whenever the snapshot epoch moves.
    """

    def __init__(
        self,
        graph: TopologyGraph,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.graph = graph
        self.routing = routing
        #: Ordered pair -> channel tuple (None: pair is disconnected).
        self._pairs: dict[
            tuple[str, str], Optional[tuple[DirectedEdge, ...]]
        ] = {}
        #: Sorted node tuple -> channel union over all its ordered pairs.
        self._sets: dict[tuple[str, ...], frozenset] = {}
        self.hits = 0
        self.misses = 0

    def _pair_edges(self, a: str, b: str) -> Optional[tuple[DirectedEdge, ...]]:
        key = (a, b)
        if key in self._pairs:
            return self._pairs[key]
        if self.routing is not None:
            path = self.routing.route(a, b)
        else:
            path = self.graph.path(a, b)
        edges = (
            None if path is None
            else tuple(
                (frozenset((u, v)), v) for u, v in zip(path, path[1:])
            )
        )
        self._pairs[key] = edges
        return edges

    def connected(self, a: str, b: str) -> bool:
        """Whether a routed path exists from ``a`` to ``b`` (memoized).

        The batch-admission planner uses this to keep greedy placements
        inside one component without a per-request O(V+E) sweep.
        """
        return a == b or self._pair_edges(a, b) is not None

    def edges_for(self, nodes: Sequence[str]) -> set[DirectedEdge]:
        """Directed channels used by traffic among ``nodes``.

        Identical to :func:`repro.service.route_edges` on the base
        snapshot (and therefore on any residual overlay of it).
        """
        key = tuple(sorted(nodes))
        cached = self._sets.get(key)
        if cached is not None:
            self.hits += 1
            return set(cached)
        self.misses += 1
        edges: set[DirectedEdge] = set()
        for a, b in itertools.permutations(nodes, 2):
            hops = self._pair_edges(a, b)
            if hops:
                edges.update(hops)
        self._sets[key] = frozenset(edges)
        return edges

    def edges_between(
        self, groups: Sequence[Sequence[str]]
    ) -> set[DirectedEdge]:
        """Directed channels used by traffic *between* distinct groups.

        Pairs wholly inside one group are skipped — the sharded router
        uses this for trunk accounting, where each group is a connected
        shard whose internal routes never leave it, so only inter-group
        pairs can touch a boundary link.
        """
        edges: set[DirectedEdge] = set()
        for i, ga in enumerate(groups):
            for j, gb in enumerate(groups):
                if i == j:
                    continue
                for a in ga:
                    for b in gb:
                        hops = self._pair_edges(a, b)
                        if hops:
                            edges.update(hops)
        return edges


def _entry_key(entry: tuple[float, Link]) -> tuple[float, tuple[str, str]]:
    """The peel-order sort key: ``(metric, sorted endpoint names)``."""
    fraction, link = entry
    ends = (link.u, link.v) if link.u < link.v else (link.v, link.u)
    return (fraction, ends)


class PeelScheduleCache:
    """Memoized kernel peel schedules for one snapshot epoch.

    The incremental kernel's first step is sorting every link into peel
    order — O(E log E) per selection, paid per admission attempt even
    when nothing changed between requests.  Claims only perturb the
    availability of the links they route over, so the schedule against a
    *base* snapshot is computed once per ``(metric kind, references)``
    and reused; a request against a ledger with live claims re-scores
    only the claim-touched (*dirty*) links from the residual overlay and
    merges them back in — O(E + D log D) with D dirty links, and a plain
    list reuse when the ledger is quiescent (D = 0).

    Because the peel order is a strict total order (the tie-break on
    endpoint names is unique per link), the merge reproduces exactly the
    schedule :func:`repro.core.kernel.peel_order` would build from the
    residual graph — the kernel's bit-identical guarantee is preserved.

    Instances are handed to the kernel through the
    ``peel_schedule_provider`` graph hook (see :mod:`repro.core.kernel`)
    and discarded with the residual overlay when the snapshot epoch
    moves.
    """

    def __init__(self, base: TopologyGraph) -> None:
        self.base = base
        self._schedules: dict[tuple, list[tuple[float, Link]]] = {}
        self.reused = 0
        self.adjusted = 0
        self.builds = 0
        #: Total dirty edges re-scored across all adjusted schedules.
        self.rescored = 0

    @staticmethod
    def _key(kind: str, refs: References) -> tuple:
        # The only References field the kernel's peel metrics read is the
        # reference link bandwidth (heterogeneous scaling); priorities
        # scale scores, never the edge ordering.
        return (kind, refs.link_bandwidth)

    def schedule(
        self,
        kind: str,
        refs: References,
        metric: Callable[[Link], float],
        residual: TopologyGraph,
        dirty_keys: Collection[frozenset],
    ) -> list[tuple[float, Link]]:
        """The peel schedule for ``residual``, reusing the base sort.

        ``dirty_keys`` are the undirected link keys currently carrying
        claims (the only links whose metric can differ from the base
        snapshot's).  Keys absent from the snapshot are ignored, exactly
        as the residual debit ignores them.
        """
        base_sched = self._schedules.get(self._key(kind, refs))
        if base_sched is None:
            self.builds += 1
            base_sched = peel_order(self.base, metric)
            self._schedules[self._key(kind, refs)] = base_sched
        dirty = {
            key for key in dirty_keys
            if len(key) == 2 and residual.has_link(*tuple(key))
        }
        if not dirty:
            self.reused += 1
            return base_sched
        self.adjusted += 1
        self.rescored += len(dirty)
        clean = [e for e in base_sched if e[1].key not in dirty]
        touched = [
            (metric(link), link)
            for link in (residual.link(*tuple(key)) for key in dirty)
        ]
        touched.sort(key=_entry_key)
        return list(heapq.merge(clean, touched, key=_entry_key))

    def provider(
        self,
        residual: TopologyGraph,
        dirty_keys: Callable[[], Collection[frozenset]],
    ) -> Callable[[str, References, Callable[[Link], float]], list]:
        """A ``peel_schedule_provider`` closure for ``residual``."""

        def provide(
            kind: str, refs: References, metric: Callable[[Link], float]
        ) -> list[tuple[float, Link]]:
            return self.schedule(kind, refs, metric, residual, dirty_keys())

        return provide
