"""Durability for the reservation ledger: write-ahead log + snapshots.

The ledger is the service's account book, but until now it lived only in
memory: a ``repro-serve`` crash silently dropped every admitted lease,
and restarts began from an empty network even while tenants kept
running.  This module makes the control plane restartable:

- :class:`LedgerWal` subscribes to the ledger's listener path
  (:meth:`ReservationLedger.subscribe`) and appends one JSONL record per
  mutation — ``grant``, ``renew``, ``release``, ``expire``, ``evict``,
  ``preempt``, and ``preempt_clamp`` (the grace-period deadline clamp).
  Records are flushed to the OS per append; ``fsync=True`` additionally
  forces them to stable storage (power-loss durability at a latency
  cost).
- Every ``snapshot_every`` records the WAL **compacts**: the full ledger
  state is written atomically to ``snapshot.json`` (temp file +
  ``os.replace``) and the log is truncated.  Monotonic sequence numbers
  make the pair crash-safe — a crash between snapshot and truncation
  just leaves records the replay skips (``seq <= snapshot["seq"]``).
- :meth:`ReservationLedger.recover` (implemented here as
  :func:`recover_ledger`) loads the snapshot, replays the surviving log,
  and reconstructs leases, deadlines, and the exact claim tallies.
  Replay repeats the *same float operations in the same order* as the
  original process, so the recovered ledger's ``residual_graph()`` is
  **bit-identical** to the pre-crash one — enforced by
  ``check_invariants(view=...)`` after the service rebuilds its overlay.

Tail handling mirrors classic WAL semantics: a torn final record (the
process died mid-append) is tolerated — it is dropped, reported via
:attr:`RecoveryReport.truncated_tail`, and physically truncated before
new records are appended.  Corruption anywhere *before* the tail is not
recoverable by dropping a suffix and raises :class:`WalCorruptError`.

All floats round-trip exactly: ``json`` serializes Python floats with
``repr`` (shortest round-trip form), so ``float(json(x)) == x`` bit for
bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from ..topology.residual import DirectedEdge
from .ledger import Reservation

__all__ = [
    "LedgerWal",
    "RecoveryReport",
    "WalCorruptError",
    "WalError",
    "recover_ledger",
]

#: WAL file names inside a state directory.
WAL_NAME = "wal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

#: Record kinds that *remove* a reservation (replayed as a release).
_RELEASE_KINDS = frozenset({"release", "expire", "evict", "preempt"})
#: Record kinds that only move a lease deadline.
_DEADLINE_KINDS = frozenset({"renew", "preempt_clamp"})


class WalError(Exception):
    """A write-ahead-log failure (I/O or state-directory layout)."""


class WalCorruptError(WalError):
    """The WAL or snapshot cannot be replayed.

    Raised for damage that dropping a torn tail record cannot repair: a
    malformed record *before* the last line, an unknown record kind, a
    record referencing a lease the replayed state does not hold, or an
    unreadable snapshot.
    """


def encode_edge(edge: DirectedEdge) -> list:
    """JSON-safe form of a directed channel: ``[[u, v], dst]`` (sorted)."""
    key, dst = edge
    return [sorted(key), dst]


def decode_edge(raw) -> DirectedEdge:
    """Inverse of :func:`encode_edge`."""
    ends, dst = raw
    return (frozenset(ends), dst)


def _encode_reservation(r: Reservation, caps: list[float]) -> dict:
    """The grant/snapshot payload for one reservation.

    ``caps`` are the claimed channels' peak capacities (aligned with
    ``r.edges``) — recorded so recovery never needs the topology graph.
    """
    return {
        "app": r.app_id,
        "nodes": list(r.nodes),
        "cpu": r.cpu_fraction,
        "bw": r.bw_bps,
        "edges": [encode_edge(e) for e in r.edges],
        "caps": caps,
        "priority": r.priority,
        "granted_at": r.granted_at,
        "expires_at": r.expires_at,
    }


def _decode_reservation(payload: dict) -> tuple[Reservation, list[float]]:
    reservation = Reservation(
        app_id=payload["app"],
        nodes=tuple(payload["nodes"]),
        cpu_fraction=float(payload["cpu"]),
        bw_bps=float(payload["bw"]),
        edges=tuple(decode_edge(e) for e in payload["edges"]),
        priority=payload["priority"],
        granted_at=float(payload["granted_at"]),
        expires_at=float(payload["expires_at"]),
    )
    return reservation, [float(c) for c in payload["caps"]]


@dataclass(frozen=True)
class RecoveryReport:
    """What a :func:`recover_ledger` replay found and restored."""

    #: Live leases after replay.
    leases: int
    #: WAL records replayed (snapshot-covered records are skipped).
    records: int
    #: Sequence number the snapshot covers through (0: no snapshot).
    snapshot_seq: int
    #: Highest sequence number seen across snapshot and log.
    last_seq: int
    #: A torn final record was dropped (crash mid-append).
    truncated_tail: bool


def _read_wal(path: str) -> tuple[list[dict], bool, int]:
    """Parse a WAL file; returns ``(records, truncated_tail, valid_bytes)``.

    The final line may be torn (no newline, or unparseable) — it is
    dropped and ``valid_bytes`` marks where the intact prefix ends so the
    writer can truncate before appending.  A malformed line anywhere else
    raises :class:`WalCorruptError`.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        return [], False, 0

    def _parse(line: bytes) -> dict:
        record = json.loads(line.decode("utf-8"))
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError("not a WAL record")
        return record

    records: list[dict] = []
    offset = 0
    lines = blob.split(b"\n")
    complete, remainder = lines[:-1], lines[-1]
    for i, line in enumerate(complete):
        try:
            records.append(_parse(line))
        except (ValueError, UnicodeDecodeError) as exc:
            rest = b"\n".join(complete[i + 1:] + [remainder])
            if not rest.strip():
                return records, True, offset
            raise WalCorruptError(
                f"{path}: malformed record at byte {offset} "
                f"(not the final line — cannot truncate it away): {exc}"
            ) from None
        offset += len(line) + 1
    if remainder:
        # A final line missing its newline is intact iff it parses —
        # the JSON object closed, only the terminator was lost.
        try:
            records.append(_parse(remainder))
        except (ValueError, UnicodeDecodeError):
            return records, True, offset
        offset += len(remainder)
    return records, False, offset


def _read_snapshot(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            snap = json.load(fh)
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as exc:
        # Snapshots are written atomically (temp + rename), so a torn
        # snapshot never exists on disk; unparseable means corruption.
        raise WalCorruptError(f"{path}: unreadable snapshot: {exc}") from None
    if not isinstance(snap, dict) or "seq" not in snap:
        raise WalCorruptError(f"{path}: snapshot missing 'seq'")
    return snap


class LedgerWal:
    """Append-only durability for one :class:`ReservationLedger`.

    Parameters
    ----------
    state_dir:
        Directory holding ``wal.jsonl`` and ``snapshot.json`` (created
        if missing).  One ledger per directory.
    snapshot_every:
        Compact after this many appended records: write a full snapshot
        and truncate the log.  Bounds both replay time and log size.
    fsync:
        Force every append (and snapshot) to stable storage.  Off by
        default: the flush-to-OS path survives process crashes, which is
        the failure mode the service actually models; power-loss
        durability costs an fsync per mutation.

    Call :meth:`attach` to subscribe to a ledger; every subsequent
    mutation is logged before the service's own listeners see it.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        snapshot_every: int = 256,
        fsync: bool = False,
    ) -> None:
        if snapshot_every <= 0:
            raise ValueError(
                f"snapshot_every must be positive: {snapshot_every}"
            )
        self.state_dir = state_dir
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        os.makedirs(state_dir, exist_ok=True)
        self.wal_path = os.path.join(state_dir, WAL_NAME)
        self.snapshot_path = os.path.join(state_dir, SNAPSHOT_NAME)
        snap = _read_snapshot(self.snapshot_path)
        records, truncated, valid_bytes = _read_wal(self.wal_path)
        if truncated:
            # Physically drop the torn tail before appending after it.
            with open(self.wal_path, "rb+") as fh:
                fh.truncate(valid_bytes)
        self._seq = max(
            [snap["seq"] if snap else 0]
            + [int(r.get("seq", 0)) for r in records]
        )
        self._since_snapshot = len(records)
        self._fh = open(self.wal_path, "a", encoding="utf-8")
        self._ledger = None
        #: Appended records over this WAL's lifetime (metrics).
        self.appended = 0
        #: Snapshots written over this WAL's lifetime (metrics).
        self.snapshots = 0

    # -- the ledger side ------------------------------------------------------
    def attach(self, ledger) -> None:
        """Subscribe to ``ledger``; all further mutations are logged."""
        self._ledger = ledger
        ledger.subscribe(self.on_event)

    def on_event(self, kind: str, reservation: Reservation) -> None:
        """Ledger listener: map a mutation to its WAL record."""
        if kind == "reserve":
            caps = [
                self._ledger._edge_caps[e] for e in reservation.edges
            ] if self._ledger is not None else []
            record = {"kind": "grant"}
            record.update(_encode_reservation(reservation, caps))
        elif kind in _DEADLINE_KINDS:
            record = {
                "kind": kind,
                "app": reservation.app_id,
                "expires_at": reservation.expires_at,
            }
        elif kind in _RELEASE_KINDS:
            record = {"kind": kind, "app": reservation.app_id}
        else:  # pragma: no cover - future-proofing
            record = {"kind": kind, "app": reservation.app_id}
        self.append(record)

    def append(self, record: dict) -> int:
        """Write one record (assigns ``seq``); returns the sequence number.

        Compacts into a snapshot once ``snapshot_every`` records have
        accumulated since the last one.
        """
        if self._fh is None:
            raise WalError("WAL is closed")
        self._seq += 1
        record = {"seq": self._seq, **record}
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.appended += 1
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.snapshot()
        return self._seq

    # -- snapshot / compaction ------------------------------------------------
    def snapshot(self) -> None:
        """Write the attached ledger's full state; truncate the log.

        Atomic: the snapshot lands via temp-file + ``os.replace`` before
        the log is truncated, and sequence numbers keep a crash between
        the two steps harmless (replay skips covered records).
        """
        ledger = self._ledger
        if ledger is None:
            raise WalError("no ledger attached; cannot snapshot")
        snap = {
            "version": 1,
            "seq": self._seq,
            "cpu_cap": ledger.cpu_cap,
            "reservations": [
                _encode_reservation(
                    r, [ledger._edge_caps[e] for e in r.edges]
                )
                for _, r in sorted(ledger.reservations.items())
            ],
            "node_claims": dict(ledger.node_claims()),
            "edge_claims": [
                [encode_edge(e), v]
                for e, v in sorted(
                    ledger.edge_claims().items(),
                    key=lambda item: encode_edge(item[0]),
                )
            ],
            "edge_caps": [
                [encode_edge(e), v]
                for e, v in sorted(
                    ledger._edge_caps.items(),
                    key=lambda item: encode_edge(item[0]),
                )
            ],
        }
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snap, fh)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.wal_path, "w", encoding="utf-8")
        self._since_snapshot = 0
        self.snapshots += 1

    def close(self) -> None:
        """Final compaction (when a ledger is attached) and file close."""
        if self._ledger is not None and self._fh is not None:
            self.snapshot()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LedgerWal {self.state_dir!r} seq={self._seq} "
            f"appended={self.appended} snapshots={self.snapshots}>"
        )


def recover_ledger(state_dir: str, *, cpu_cap: float = 1.0):
    """Rebuild a ledger from ``state_dir``'s snapshot + WAL.

    The implementation behind :meth:`ReservationLedger.recover`.  Returns
    the recovered ledger with a :class:`RecoveryReport` on its
    ``recovery`` attribute.  ``cpu_cap`` is the *configured* cap for the
    new process — if it is tighter than what the recovered claims allow,
    the closing ``check_invariants()`` fails loudly rather than admitting
    an inconsistent ledger.
    """
    from .ledger import ReservationLedger

    snap = _read_snapshot(os.path.join(state_dir, SNAPSHOT_NAME))
    records, truncated, _ = _read_wal(os.path.join(state_dir, WAL_NAME))
    ledger = ReservationLedger(cpu_cap=cpu_cap)
    snapshot_seq = 0
    if snap is not None:
        snapshot_seq = int(snap["seq"])
        try:
            for payload in snap["reservations"]:
                reservation, _caps = _decode_reservation(payload)
                ledger.reservations[reservation.app_id] = reservation
            ledger._node_claims = {
                name: float(v) for name, v in snap["node_claims"].items()
            }
            ledger._edge_claims = {
                decode_edge(e): float(v) for e, v in snap["edge_claims"]
            }
            ledger._edge_caps = {
                decode_edge(e): float(v) for e, v in snap["edge_caps"]
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptError(
                f"{state_dir}: malformed snapshot payload: {exc}"
            ) from None
        ledger._rebuild_deadlines()
    replayed = 0
    for record in records:
        if int(record.get("seq", 0)) <= snapshot_seq:
            continue  # crash landed between snapshot and log truncation
        try:
            kind = record["kind"]
            if kind == "grant":
                reservation, caps = _decode_reservation(record)
                ledger._restore_grant(reservation, caps)
            elif kind in _DEADLINE_KINDS:
                ledger._restore_deadline(
                    record["app"], float(record["expires_at"])
                )
            elif kind in _RELEASE_KINDS:
                ledger.release(record["app"], kind=kind)
            else:
                raise WalCorruptError(
                    f"{state_dir}: unknown WAL record kind {kind!r} "
                    f"(seq {record.get('seq')})"
                )
        except WalCorruptError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptError(
                f"{state_dir}: record seq {record.get('seq')} does not "
                f"apply to the replayed state: {exc}"
            ) from None
        replayed += 1
    ledger.check_invariants()
    last_seq = max(
        [snapshot_seq] + [int(r.get("seq", 0)) for r in records]
    )
    ledger.recovery = RecoveryReport(
        leases=ledger.active,
        records=replayed,
        snapshot_seq=snapshot_seq,
        last_seq=last_seq,
        truncated_tail=truncated,
    )
    return ledger
