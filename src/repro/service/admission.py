"""Admission control: priority classes and the bounded request queue.

The service never silently degrades everyone when the network fills up.
A request whose CPU/bandwidth floors cannot be met on residual capacity
is *queued* (bounded, priority-ordered) or *rejected* — capacity freed by
releases, lease expiries, or crash evictions re-runs admission for the
queue in priority order.

When the queue is full, a newly arriving request of strictly higher
priority displaces the worst queued request (which becomes rejected);
equal or lower priority is rejected outright.  Within a priority class
the queue is FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.spec import ApplicationSpec

__all__ = ["AdmissionQueue", "Decision", "Priority", "SelectionRequest"]


class Priority:
    """Priority classes for admission (gold outranks silver outranks bronze)."""

    GOLD = "gold"
    SILVER = "silver"
    BRONZE = "bronze"

    ALL = (GOLD, SILVER, BRONZE)
    #: Lower rank admits first.
    RANK = {GOLD: 0, SILVER: 1, BRONZE: 2}


class Decision:
    """Outcome states of a service request (see :class:`~repro.service.Grant`)."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"
    RELEASED = "released"
    EXPIRED = "expired"
    EVICTED = "evicted"
    #: Lease reclaimed (or marked for grace-period reclamation) to make
    #: an otherwise-infeasible gold request feasible.
    PREEMPTED = "preempted"

    ALL = (
        ADMITTED, QUEUED, REJECTED, RELEASED, EXPIRED, EVICTED, PREEMPTED,
    )


@dataclass
class SelectionRequest:
    """One application's ask: a spec plus the capacity it will claim.

    ``cpu_fraction`` and ``bw_bps`` are the *claims* debited from the
    shared pool if admitted — the floors admission checks on residual
    capacity.  They are deliberately separate from any floors inside
    ``spec``: the spec shapes which nodes are picked, the claims shape
    what the ledger debits.
    """

    app_id: str
    spec: ApplicationSpec
    cpu_fraction: float = 0.0
    bw_bps: float = 0.0
    priority: str = Priority.SILVER
    submitted_at: float = 0.0
    #: FIFO tie-break within a priority class, assigned by the queue.
    seq: int = field(default=0, compare=False)
    #: The service's residual-epoch counter at this request's last failed
    #: admission attempt.  ``_drain_queue`` skips re-attempting while the
    #: epoch is unchanged — no capacity came back, so the identical
    #: attempt would fail identically.  -1: never attempted.
    last_failed_epoch: int = field(default=-1, compare=False)
    #: Caller asked for provenance: the grant carries an
    #: :class:`repro.obs.ExplainRecord` (admitted *and* infeasible).
    explain: bool = field(default=False, compare=False)
    #: Why the last admission attempt failed (set by the service's
    #: pipeline; feeds the rejection side of the explain record).
    last_reason: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.app_id:
            raise ValueError("app_id cannot be empty")
        if self.priority not in Priority.ALL:
            raise ValueError(
                f"unknown priority {self.priority!r}; "
                f"expected one of {Priority.ALL}"
            )
        if not 0 <= self.cpu_fraction <= 1.0:
            raise ValueError(
                f"cpu_fraction must be in [0, 1]: {self.cpu_fraction}"
            )
        if self.bw_bps < 0:
            raise ValueError(f"bw_bps cannot be negative: {self.bw_bps}")

    @property
    def rank(self) -> tuple[int, float, int]:
        """Sort key: priority class, then submission order."""
        return (Priority.RANK[self.priority], self.submitted_at, self.seq)


class AdmissionQueue:
    """A bounded, priority-ordered queue of waiting requests.

    ``limit`` bounds memory and waiting-time exposure: beyond it, arriving
    work is rejected (or displaces strictly lower-priority work) instead
    of queueing unboundedly — the service's back-pressure mechanism.
    """

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError(f"queue limit cannot be negative: {limit}")
        self.limit = limit
        self._waiting: list[SelectionRequest] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def __contains__(self, app_id: str) -> bool:
        return any(r.app_id == app_id for r in self._waiting)

    def offer(self, request: SelectionRequest) -> Optional[SelectionRequest]:
        """Try to enqueue; returns the request displaced to make room.

        Returns ``request`` itself when the queue is full and nothing
        queued is strictly lower priority (the arrival is rejected), the
        displaced lower-priority request when one was evicted, or ``None``
        when the request simply fit.
        """
        self._seq += 1
        request.seq = self._seq
        if len(self._waiting) < self.limit:
            self._waiting.append(request)
            self._waiting.sort(key=lambda r: r.rank)
            return None
        if not self._waiting:
            return request  # limit == 0: nothing ever queues
        worst = self._waiting[-1]
        if Priority.RANK[request.priority] < Priority.RANK[worst.priority]:
            self._waiting[-1] = request
            self._waiting.sort(key=lambda r: r.rank)
            return worst
        return request

    def waiting(self) -> list[SelectionRequest]:
        """Queued requests in admission order (do not mutate)."""
        return list(self._waiting)

    def remove(self, app_id: str) -> Optional[SelectionRequest]:
        """Withdraw ``app_id``'s queued request, if present."""
        for i, request in enumerate(self._waiting):
            if request.app_id == app_id:
                return self._waiting.pop(i)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AdmissionQueue {len(self._waiting)}/{self.limit}>"
