"""repro — reproduction of *Automatic Node Selection for High Performance
Applications on Networks* (Subhlok, Lieu, Lowekamp; PPOPP 1999).

The package provides the paper's node-selection framework end to end:

- :mod:`repro.core` — the selection algorithms (Figures 2 and 3, the O(n)
  compute selector, and the §3.3/§3.4 generalizations) behind the
  :class:`~repro.core.NodeSelector` facade;
- :mod:`repro.topology` — the Remos logical-topology graph model;
- :mod:`repro.remos` — a faithful Remos substrate (SNMP agents, polling
  collector, flow/topology queries, forecasting);
- :mod:`repro.network` + :mod:`repro.des` — the simulated testbed
  (flow-level network, processor-sharing hosts, DES kernel);
- :mod:`repro.workloads` — the §4.2 load/traffic generators;
- :mod:`repro.apps` — FFT / Airshed / MRI application models;
- :mod:`repro.service` — the multi-tenant selection service (reservation
  ledger, admission control, snapshot caching) for concurrent
  applications sharing one network;
- :mod:`repro.testbed` — the CMU testbed and the Table 1 experiments;
- :mod:`repro.analysis` — statistics and report formatting.

Quickstart::

    from repro.core import ApplicationSpec, NodeSelector
    from repro.topology import star

    graph = star(8)                      # or a Remos API handle
    graph.node("h3").load_average = 2.0  # someone is busy
    selection = NodeSelector(graph).select(ApplicationSpec(num_nodes=4))
    print(selection.nodes)
"""

__version__ = "1.0.0"

from . import (
    analysis,
    apps,
    core,
    des,
    network,
    remos,
    service,
    testbed,
    topology,
    workloads,
)
from .core import ApplicationSpec, NodeSelector, Selection, select

__all__ = [
    "ApplicationSpec",
    "NodeSelector",
    "Selection",
    "select",
    "__version__",
    "analysis",
    "apps",
    "core",
    "des",
    "network",
    "remos",
    "service",
    "testbed",
    "topology",
    "workloads",
]
