"""The NodeSelector facade: spec + network information → node set.

This is the piece that ties the framework of §2 together: it accepts an
:class:`~repro.core.spec.ApplicationSpec`, obtains the current logical
topology (directly, or through a Remos query interface), and dispatches to
the appropriate selection procedure of §3.

Selection is resilient to partial information: snapshots mark crashed
(``attrs["down"]``) and unmonitorable (``attrs["unmonitorable"]``) nodes,
and the selector excludes them from every procedure by default.
:meth:`NodeSelector.validate` re-checks an existing placement against a
fresh snapshot so callers can trigger re-selection when a chosen node or
link fails mid-run.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from ..topology.graph import TopologyGraph
from ..topology.routing import RoutingTable
from .balanced import select_balanced
from .bandwidth import select_max_bandwidth
from .compute import select_max_compute
from .generalized import (
    select_client_server,
    select_routed,
    select_variable_nodes,
    select_with_bandwidth_floor,
    select_with_cpu_floor,
)
from .latency import select_with_latency_bound
from .pattern_aware import select_pattern_aware
from .metrics import References
from .spec import ApplicationSpec, Objective
from .types import NoFeasibleSelection, Selection, node_is_selectable

__all__ = ["NodeSelector", "TopologyProvider", "unhealthy_nodes"]


def unhealthy_nodes(graph: TopologyGraph, names: Sequence[str]) -> list[str]:
    """The subset of ``names`` that ``graph`` reports failed or missing.

    A node is unhealthy when it is absent from the snapshot, marked
    crashed/unmonitorable, or — for multi-node placements — cut off from
    the other named nodes (a failed link partitioned the set).
    """
    bad = [
        n for n in names
        if not graph.has_node(n) or not node_is_selectable(graph.node(n))
    ]
    good = [n for n in names if n not in bad]
    if len(good) > 1:
        component = graph.component_of(good[0])
        bad.extend(n for n in good[1:] if n not in component)
    return bad


@runtime_checkable
class TopologyProvider(Protocol):
    """Anything that can produce a logical topology snapshot.

    The Remos API (:class:`repro.remos.api.RemosAPI`) implements this; so
    does a plain closure in tests.
    """

    def topology(self) -> TopologyGraph:  # pragma: no cover - protocol
        ...


class NodeSelector:
    """Automatic node selection for one execution environment.

    Parameters
    ----------
    provider:
        A :class:`TopologyProvider` (e.g. a Remos API handle) queried for a
        fresh snapshot at each :meth:`select` call, **or** a static
        :class:`TopologyGraph` used as-is.
    exclude_unhealthy:
        If True (default), nodes the snapshot marks crashed or
        unmonitorable are never selected, whatever procedure runs.  Setting
        False restores the naive behaviour (the fault-resilience bench uses
        it as the control arm).
    view:
        Optional transform applied to every provider snapshot before
        selection — e.g. a reservation ledger's residual-capacity view
        (:meth:`repro.service.ReservationLedger.apply`), so concurrent
        applications see capacity already claimed by earlier admissions.
        Explicit ``graph`` arguments to :meth:`select` bypass it: callers
        passing a graph (the migration engine, the service's admission
        check) have already adjusted it.

    Examples
    --------
    >>> from repro.topology import star
    >>> from repro.core import ApplicationSpec, NodeSelector
    >>> sel = NodeSelector(star(8)).select(ApplicationSpec(num_nodes=4))
    >>> len(sel.nodes)
    4
    """

    def __init__(
        self,
        provider: TopologyProvider | TopologyGraph,
        exclude_unhealthy: bool = True,
        view: Optional[Callable[[TopologyGraph], TopologyGraph]] = None,
    ) -> None:
        self._provider = provider
        self.exclude_unhealthy = exclude_unhealthy
        self.view = view

    def snapshot(self) -> TopologyGraph:
        """A fresh topology snapshot from the provider, through ``view``."""
        if isinstance(self._provider, TopologyGraph):
            g = self._provider
        else:
            g = self._provider.topology()
        return self.view(g) if self.view is not None else g

    def _gate(self, eligible: Optional[Callable]) -> Optional[Callable]:
        """Compose an eligibility predicate with the health exclusion."""
        if not self.exclude_unhealthy:
            return eligible

        def healthy(node) -> bool:
            return node_is_selectable(node) and (
                eligible is None or eligible(node)
            )

        return healthy

    def validate(self, nodes: Sequence[str]) -> list[str]:
        """Re-check a placement against a fresh snapshot.

        Returns the selected nodes that have since failed (crashed, gone
        unmonitorable, or been partitioned away); an empty list means the
        placement is still viable.  Callers re-select when it is not —
        link *degradation* (capacity loss without partition) is left to
        the hysteresis-gated migration path instead, since the placement
        can still limp along.
        """
        return unhealthy_nodes(self.snapshot(), nodes)

    def select(
        self, spec: ApplicationSpec, graph: Optional[TopologyGraph] = None
    ) -> Selection:
        """Run the appropriate selection procedure for ``spec``.

        ``graph`` overrides the provider snapshot (used by the migration
        engine, which pre-adjusts the snapshot for self-load).
        """
        g = graph if graph is not None else self.snapshot()
        refs = References(
            compute_priority=spec.compute_priority,
            comm_priority=spec.comm_priority,
        )

        if spec.groups:
            return self._select_groups(g, spec, refs)

        eligible = self._gate(spec.eligible)

        if spec.num_nodes_range is not None:
            return select_variable_nodes(
                g, spec.num_nodes_range, spec.speedup_model, refs,
                eligible=eligible,
            )

        m = spec.num_nodes
        if spec.min_bandwidth_bps is not None:
            return select_with_bandwidth_floor(
                g, m, spec.min_bandwidth_bps, refs, eligible=eligible
            )
        if spec.min_cpu_fraction is not None:
            return select_with_cpu_floor(
                g, m, spec.min_cpu_fraction, refs, eligible=eligible
            )
        if spec.max_latency_s is not None:
            return select_with_latency_bound(
                g, m, spec.max_latency_s, refs, eligible=eligible
            )
        if spec.account_simultaneous_streams:
            return select_pattern_aware(
                g, m, spec.pattern, refs, eligible=eligible
            )

        if not g.is_acyclic():
            # Cycles + static routing (§3.3): route-aware procedures.
            return select_routed(
                g, m, RoutingTable(g), objective=spec.objective, refs=refs,
                eligible=eligible,
            )

        if spec.objective == Objective.COMPUTE:
            return select_max_compute(g, m, refs, eligible=eligible)
        if spec.objective == Objective.BANDWIDTH:
            return select_max_bandwidth(g, m, refs, eligible=eligible)
        return select_balanced(g, m, refs, eligible=eligible)

    def _select_groups(
        self, g: TopologyGraph, spec: ApplicationSpec, refs: References
    ) -> Selection:
        """Group placement: currently the client/server pattern (§3.4).

        Supported shapes: exactly two groups, where one is the "server-like"
        group (listed first) and the other holds the remaining workers.
        Richer patterns raise ``NoFeasibleSelection`` so callers learn the
        limitation explicitly rather than getting a silent wrong placement.
        """
        if len(spec.groups) != 2:
            raise NoFeasibleSelection(
                "group placement currently supports exactly two groups "
                f"(got {len(spec.groups)})"
            )
        server, client = spec.groups
        eligible = self._gate(spec.eligible)

        def server_ok(node):
            if eligible is not None and not eligible(node):
                return False
            return server.admits(node)

        def client_ok(node):
            if eligible is not None and not eligible(node):
                return False
            return client.admits(node)

        sel = select_client_server(
            g,
            num_clients=client.size,
            num_servers=server.size,
            server_eligible=server_ok,
            client_eligible=client_ok,
            refs=refs,
        )
        sel.extras["group_names"] = {
            server.name: sel.extras["servers"],
            client.name: sel.extras["clients"],
        }
        return sel
