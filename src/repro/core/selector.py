"""The NodeSelector facade: spec + network information → node set.

This is the piece that ties the framework of §2 together: it accepts an
:class:`~repro.core.spec.ApplicationSpec`, obtains the current logical
topology (directly, or through a Remos query interface), and dispatches to
the appropriate selection procedure of §3.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from ..topology.graph import TopologyGraph
from ..topology.routing import RoutingTable
from .balanced import select_balanced
from .bandwidth import select_max_bandwidth
from .compute import select_max_compute
from .generalized import (
    select_client_server,
    select_routed,
    select_variable_nodes,
    select_with_bandwidth_floor,
    select_with_cpu_floor,
)
from .latency import select_with_latency_bound
from .pattern_aware import select_pattern_aware
from .metrics import References
from .spec import ApplicationSpec, GroupSpec, Objective
from .types import NoFeasibleSelection, Selection

__all__ = ["NodeSelector", "TopologyProvider"]


@runtime_checkable
class TopologyProvider(Protocol):
    """Anything that can produce a logical topology snapshot.

    The Remos API (:class:`repro.remos.api.RemosAPI`) implements this; so
    does a plain closure in tests.
    """

    def topology(self) -> TopologyGraph:  # pragma: no cover - protocol
        ...


class NodeSelector:
    """Automatic node selection for one execution environment.

    Parameters
    ----------
    provider:
        A :class:`TopologyProvider` (e.g. a Remos API handle) queried for a
        fresh snapshot at each :meth:`select` call, **or** a static
        :class:`TopologyGraph` used as-is.

    Examples
    --------
    >>> from repro.topology import star
    >>> from repro.core import ApplicationSpec, NodeSelector
    >>> sel = NodeSelector(star(8)).select(ApplicationSpec(num_nodes=4))
    >>> len(sel.nodes)
    4
    """

    def __init__(self, provider: TopologyProvider | TopologyGraph) -> None:
        self._provider = provider

    def snapshot(self) -> TopologyGraph:
        """A fresh topology snapshot from the provider."""
        if isinstance(self._provider, TopologyGraph):
            return self._provider
        return self._provider.topology()

    def select(
        self, spec: ApplicationSpec, graph: Optional[TopologyGraph] = None
    ) -> Selection:
        """Run the appropriate selection procedure for ``spec``.

        ``graph`` overrides the provider snapshot (used by the migration
        engine, which pre-adjusts the snapshot for self-load).
        """
        g = graph if graph is not None else self.snapshot()
        refs = References(
            compute_priority=spec.compute_priority,
            comm_priority=spec.comm_priority,
        )

        if spec.groups:
            return self._select_groups(g, spec, refs)

        if spec.num_nodes_range is not None:
            return select_variable_nodes(
                g, spec.num_nodes_range, spec.speedup_model, refs,
                eligible=spec.eligible,
            )

        m = spec.num_nodes
        if spec.min_bandwidth_bps is not None:
            return select_with_bandwidth_floor(
                g, m, spec.min_bandwidth_bps, refs, eligible=spec.eligible
            )
        if spec.min_cpu_fraction is not None:
            return select_with_cpu_floor(
                g, m, spec.min_cpu_fraction, refs, eligible=spec.eligible
            )
        if spec.max_latency_s is not None:
            return select_with_latency_bound(
                g, m, spec.max_latency_s, refs, eligible=spec.eligible
            )
        if spec.account_simultaneous_streams:
            return select_pattern_aware(
                g, m, spec.pattern, refs, eligible=spec.eligible
            )

        if not g.is_acyclic():
            # Cycles + static routing (§3.3): route-aware procedures.
            return select_routed(
                g, m, RoutingTable(g), objective=spec.objective, refs=refs,
                eligible=spec.eligible,
            )

        if spec.objective == Objective.COMPUTE:
            return select_max_compute(g, m, refs, eligible=spec.eligible)
        if spec.objective == Objective.BANDWIDTH:
            return select_max_bandwidth(g, m, refs, eligible=spec.eligible)
        return select_balanced(g, m, refs, eligible=spec.eligible)

    def _select_groups(
        self, g: TopologyGraph, spec: ApplicationSpec, refs: References
    ) -> Selection:
        """Group placement: currently the client/server pattern (§3.4).

        Supported shapes: exactly two groups, where one is the "server-like"
        group (listed first) and the other holds the remaining workers.
        Richer patterns raise ``NoFeasibleSelection`` so callers learn the
        limitation explicitly rather than getting a silent wrong placement.
        """
        if len(spec.groups) != 2:
            raise NoFeasibleSelection(
                "group placement currently supports exactly two groups "
                f"(got {len(spec.groups)})"
            )
        server, client = spec.groups

        def server_ok(node):
            if spec.eligible is not None and not spec.eligible(node):
                return False
            return server.admits(node)

        def client_ok(node):
            if spec.eligible is not None and not spec.eligible(node):
                return False
            return client.admits(node)

        sel = select_client_server(
            g,
            num_clients=client.size,
            num_servers=server.size,
            server_eligible=server_ok,
            client_eligible=client_ok,
            refs=refs,
        )
        sel.extras["group_names"] = {
            server.name: sel.extras["servers"],
            client.name: sel.extras["clients"],
        }
        return sel
