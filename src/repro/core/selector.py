"""The NodeSelector facade: spec + network information → node set.

This is the piece that ties the framework of §2 together: it accepts an
:class:`~repro.core.spec.ApplicationSpec`, obtains the current logical
topology (directly, or through a Remos query interface), and dispatches to
the appropriate selection procedure of §3.

Dispatch is driven by a declarative **procedure registry** rather than a
hard-coded if-chain: each :class:`Procedure` pairs a predicate over
``(spec, graph)`` with a runner, and the first match in precedence order
wins.  The registry is data, so embedders can inspect the dispatch table
(:meth:`NodeSelector.procedure_for`), reorder it, or plug in their own
procedures (:func:`register_procedure`) without monkey-patching
``select``.

Selection is resilient to partial information: snapshots mark crashed
(``attrs["down"]``) and unmonitorable (``attrs["unmonitorable"]``) nodes,
and the selector excludes them from every procedure by default.
:meth:`NodeSelector.validate` re-checks an existing placement against a
fresh snapshot so callers can trigger re-selection when a chosen node or
link fails mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..topology.graph import Node, TopologyGraph
from ..topology.routing import RoutingTable
from .balanced import select_balanced
from .bandwidth import select_max_bandwidth
from .compute import select_max_compute
from .generalized import (
    select_client_server,
    select_routed,
    select_variable_nodes,
    select_with_bandwidth_floor,
    select_with_cpu_floor,
)
from .latency import select_with_latency_bound
from .pattern_aware import select_pattern_aware
from .metrics import References
from .spec import ApplicationSpec, Objective
from .types import ExtrasKey, NoFeasibleSelection, Selection, node_is_selectable

__all__ = [
    "NodeSelector",
    "Procedure",
    "TopologyProvider",
    "default_procedures",
    "register_procedure",
    "select",
    "unhealthy_nodes",
]

#: Eligibility predicate handed to every procedure runner (health gate
#: already composed with the spec's own predicate).
Eligible = Optional[Callable[[Node], bool]]


def unhealthy_nodes(graph: TopologyGraph, names: Sequence[str]) -> list[str]:
    """The subset of ``names`` that ``graph`` reports failed or missing.

    A node is unhealthy when it is absent from the snapshot, marked
    crashed/unmonitorable, or — for multi-node placements — cut off from
    the other named nodes (a failed link partitioned the set).
    """
    bad = [
        n for n in names
        if not graph.has_node(n) or not node_is_selectable(graph.node(n))
    ]
    bad_set = set(bad)
    good = [n for n in names if n not in bad_set]
    if len(good) > 1:
        component = graph.component_of(good[0])
        bad.extend(n for n in good[1:] if n not in component)
    return bad


@runtime_checkable
class TopologyProvider(Protocol):
    """Anything that can produce a logical topology snapshot.

    The Remos API (:class:`repro.remos.api.RemosAPI`) implements this; so
    does a plain closure in tests.
    """

    def topology(self) -> TopologyGraph:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class Procedure:
    """One entry of the selection dispatch table.

    Attributes
    ----------
    name:
        Stable identifier; recorded in ``Selection.extras["procedure"]``.
    matches:
        Predicate over ``(spec, graph)`` deciding whether this procedure
        should handle the request.  The first matching procedure in
        registry order wins, so put more specific features earlier.
    run:
        Runner ``(graph, spec, refs, eligible) -> Selection``; ``eligible``
        arrives already composed with the selector's health gate.
    """

    name: str
    matches: Callable[[ApplicationSpec, TopologyGraph], bool]
    run: Callable[
        [TopologyGraph, ApplicationSpec, References, Eligible], Selection
    ]


# -- default procedure runners ----------------------------------------------

def _run_groups(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    """Group placement: currently the client/server pattern (§3.4).

    Supported shapes: exactly two groups, where one is the "server-like"
    group (listed first) and the other holds the remaining workers.
    Richer patterns raise ``NoFeasibleSelection`` so callers learn the
    limitation explicitly rather than getting a silent wrong placement.
    """
    if len(spec.groups) != 2:
        raise NoFeasibleSelection(
            "group placement currently supports exactly two groups "
            f"(got {len(spec.groups)})"
        )
    server, client = spec.groups

    def server_ok(node: Node) -> bool:
        if eligible is not None and not eligible(node):
            return False
        return server.admits(node)

    def client_ok(node: Node) -> bool:
        if eligible is not None and not eligible(node):
            return False
        return client.admits(node)

    sel = select_client_server(
        g,
        num_clients=client.size,
        num_servers=server.size,
        server_eligible=server_ok,
        client_eligible=client_ok,
        refs=refs,
    )
    sel.extras[ExtrasKey.GROUP_NAMES] = {
        server.name: sel.extras[ExtrasKey.SERVERS],
        client.name: sel.extras[ExtrasKey.CLIENTS],
    }
    return sel


def _run_variable_m(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    assert spec.num_nodes_range is not None and spec.speedup_model is not None
    return select_variable_nodes(
        g, spec.num_nodes_range, speedup=spec.speedup_model, refs=refs,
        eligible=eligible,
    )


def _run_bandwidth_floor(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    assert spec.min_bandwidth_bps is not None
    return select_with_bandwidth_floor(
        g, spec.num_nodes, floor_bps=spec.min_bandwidth_bps, refs=refs,
        eligible=eligible,
    )


def _run_cpu_floor(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    assert spec.min_cpu_fraction is not None
    return select_with_cpu_floor(
        g, spec.num_nodes, floor=spec.min_cpu_fraction, refs=refs,
        eligible=eligible,
    )


def _run_latency_bound(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    assert spec.max_latency_s is not None
    return select_with_latency_bound(
        g, spec.num_nodes, max_latency_s=spec.max_latency_s, refs=refs,
        eligible=eligible,
    )


def _run_pattern_aware(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    return select_pattern_aware(
        g, spec.num_nodes, pattern=spec.pattern, refs=refs, eligible=eligible
    )


def _run_routed(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    # Cycles + static routing (§3.3): route-aware procedures.
    return select_routed(
        g, spec.num_nodes, routing=RoutingTable(g), objective=spec.objective,
        refs=refs, eligible=eligible,
    )


def _run_max_compute(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    return select_max_compute(g, spec.num_nodes, refs=refs, eligible=eligible)


def _run_max_bandwidth(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    return select_max_bandwidth(g, spec.num_nodes, refs=refs, eligible=eligible)


def _run_balanced(
    g: TopologyGraph, spec: ApplicationSpec, refs: References,
    eligible: Eligible,
) -> Selection:
    return select_balanced(g, spec.num_nodes, refs=refs, eligible=eligible)


def default_procedures() -> list[Procedure]:
    """A fresh copy of the built-in dispatch table, in precedence order.

    Spec *features* (groups, variable node counts, hard floors, latency
    bounds, simultaneous-stream accounting) outrank topology shape
    (cyclic → routed), which outranks the plain ``objective`` procedures;
    the balanced algorithm is the unconditional fallback.
    """
    return [
        Procedure(
            "groups",
            lambda spec, g: bool(spec.groups),
            _run_groups,
        ),
        Procedure(
            "variable-m",
            lambda spec, g: spec.num_nodes_range is not None,
            _run_variable_m,
        ),
        Procedure(
            "bandwidth-floor",
            lambda spec, g: spec.min_bandwidth_bps is not None,
            _run_bandwidth_floor,
        ),
        Procedure(
            "cpu-floor",
            lambda spec, g: spec.min_cpu_fraction is not None,
            _run_cpu_floor,
        ),
        Procedure(
            "latency-bound",
            lambda spec, g: spec.max_latency_s is not None,
            _run_latency_bound,
        ),
        Procedure(
            "pattern-aware",
            lambda spec, g: spec.account_simultaneous_streams,
            _run_pattern_aware,
        ),
        Procedure(
            "routed",
            lambda spec, g: not g.is_acyclic(),
            _run_routed,
        ),
        Procedure(
            "max-compute",
            lambda spec, g: spec.objective == Objective.COMPUTE,
            _run_max_compute,
        ),
        Procedure(
            "max-bandwidth",
            lambda spec, g: spec.objective == Objective.BANDWIDTH,
            _run_max_bandwidth,
        ),
        Procedure(
            "balanced",
            lambda spec, g: True,
            _run_balanced,
        ),
    ]


#: The shared registry new :class:`NodeSelector` instances copy.
PROCEDURES: list[Procedure] = default_procedures()


def register_procedure(
    procedure: Procedure,
    *,
    before: Optional[str] = None,
    registry: Optional[list[Procedure]] = None,
) -> None:
    """Insert ``procedure`` into the dispatch table.

    ``before`` names an existing procedure to take precedence over
    (default: the ``"balanced"`` fallback, i.e. after every built-in
    feature but before the catch-all).  Pass a selector's own
    ``procedures`` list as ``registry`` to scope the registration to one
    instance; the default mutates the shared module-level table used by
    selectors created afterwards.
    """
    table = PROCEDURES if registry is None else registry
    if any(p.name == procedure.name for p in table):
        raise ValueError(f"procedure {procedure.name!r} already registered")
    anchor = before if before is not None else "balanced"
    for i, existing in enumerate(table):
        if existing.name == anchor:
            table.insert(i, procedure)
            return
    raise ValueError(f"no procedure named {anchor!r} to insert before")


class NodeSelector:
    """Automatic node selection for one execution environment.

    Parameters
    ----------
    provider:
        A :class:`TopologyProvider` (e.g. a Remos API handle) queried for a
        fresh snapshot at each :meth:`select` call, **or** a static
        :class:`TopologyGraph` used as-is.
    exclude_unhealthy:
        If True (default), nodes the snapshot marks crashed or
        unmonitorable are never selected, whatever procedure runs.  Setting
        False restores the naive behaviour (the fault-resilience bench uses
        it as the control arm).
    view:
        Optional transform applied to every provider snapshot before
        selection — e.g. a reservation ledger's residual-capacity view
        (:meth:`repro.service.ReservationLedger.apply`), so concurrent
        applications see capacity already claimed by earlier admissions.
        Explicit ``graph`` arguments to :meth:`select` bypass it: callers
        passing a graph (the migration engine, the service's admission
        check) have already adjusted it.
    procedures:
        Optional dispatch table overriding the shared registry (a copy of
        which is taken at construction, so later global registrations do
        not mutate existing selectors).

    Examples
    --------
    >>> from repro.topology import star
    >>> from repro.core import ApplicationSpec, NodeSelector
    >>> sel = NodeSelector(star(8)).select(ApplicationSpec(num_nodes=4))
    >>> len(sel.nodes)
    4
    """

    def __init__(
        self,
        provider: TopologyProvider | TopologyGraph,
        exclude_unhealthy: bool = True,
        view: Optional[Callable[[TopologyGraph], TopologyGraph]] = None,
        procedures: Optional[Sequence[Procedure]] = None,
    ) -> None:
        self._provider = provider
        self.exclude_unhealthy = exclude_unhealthy
        self.view = view
        self.procedures: list[Procedure] = list(
            PROCEDURES if procedures is None else procedures
        )

    def snapshot(self) -> TopologyGraph:
        """A fresh topology snapshot from the provider, through ``view``."""
        if isinstance(self._provider, TopologyGraph):
            g = self._provider
        else:
            g = self._provider.topology()
        return self.view(g) if self.view is not None else g

    def _gate(self, eligible: Eligible) -> Eligible:
        """Compose an eligibility predicate with the health exclusion."""
        if not self.exclude_unhealthy:
            return eligible

        def healthy(node: Node) -> bool:
            return node_is_selectable(node) and (
                eligible is None or eligible(node)
            )

        return healthy

    def validate(self, nodes: Sequence[str]) -> list[str]:
        """Re-check a placement against a fresh snapshot.

        Returns the selected nodes that have since failed (crashed, gone
        unmonitorable, or been partitioned away); an empty list means the
        placement is still viable.  Callers re-select when it is not —
        link *degradation* (capacity loss without partition) is left to
        the hysteresis-gated migration path instead, since the placement
        can still limp along.
        """
        return unhealthy_nodes(self.snapshot(), nodes)

    def procedure_for(
        self, spec: ApplicationSpec, graph: Optional[TopologyGraph] = None
    ) -> Procedure:
        """The registry entry that would handle ``spec`` on ``graph``.

        ``graph`` defaults to a fresh snapshot (topology shape participates
        in matching — cyclic graphs dispatch to the routed procedures).
        """
        g = graph if graph is not None else self.snapshot()
        for procedure in self.procedures:
            if procedure.matches(spec, g):
                return procedure
        raise LookupError(
            "no registered procedure matches the spec; the default table "
            "ends with an unconditional 'balanced' fallback"
        )

    def select(
        self,
        spec: ApplicationSpec,
        graph: Optional[TopologyGraph] = None,
        *,
        explain: bool = False,
    ) -> Selection:
        """Run the appropriate selection procedure for ``spec``.

        ``graph`` overrides the provider snapshot (used by the migration
        engine, which pre-adjusts the snapshot for self-load).  The chosen
        registry entry is recorded in ``extras["procedure"]``.

        ``explain=True`` attaches provenance — the peel sequence, the
        bottleneck edge fixing the final min-bandwidth, per-node CPU, and
        input staleness — as an :class:`repro.obs.ExplainRecord` under
        ``extras[ExtrasKey.EXPLAIN]``.  Built post hoc, so the selection
        procedures themselves are untouched.
        """
        g = graph if graph is not None else self.snapshot()
        refs = References(
            compute_priority=spec.compute_priority,
            comm_priority=spec.comm_priority,
        )
        procedure = self.procedure_for(spec, g)
        eligible = self._gate(spec.eligible)
        sel = procedure.run(g, spec, refs, eligible)
        sel.extras.setdefault(ExtrasKey.PROCEDURE, procedure.name)
        if explain:
            # Deferred import: repro.obs.explain imports core.kernel and
            # core.metrics, and nothing pays for it unless asked.
            from ..obs.explain import explain_selection

            sel.extras[ExtrasKey.EXPLAIN] = explain_selection(
                g, sel, refs=refs
            )
        return sel


def select(
    graph_or_provider: TopologyProvider | TopologyGraph,
    spec: Optional[ApplicationSpec] = None,
    /,
    *,
    explain: bool = False,
    **spec_fields,
) -> Selection:
    """One-call selection: the package-level convenience entry point.

    Accepts either a ready :class:`ApplicationSpec` or its keyword fields
    directly::

        import repro
        repro.select(graph, num_nodes=4)                      # build a spec
        repro.select(remos_api, ApplicationSpec(num_nodes=4)) # or pass one

    Equivalent to ``NodeSelector(graph_or_provider).select(spec)`` with the
    default health gating and procedure registry.  ``explain=True``
    attaches an :class:`repro.obs.ExplainRecord` under
    ``extras[ExtrasKey.EXPLAIN]``.
    """
    if spec is None:
        spec = ApplicationSpec(**spec_fields)
    elif spec_fields:
        raise TypeError(
            "pass either an ApplicationSpec or spec keyword fields, not both"
        )
    return NodeSelector(graph_or_provider).select(spec, explain=explain)
