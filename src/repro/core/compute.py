"""Maximize-computation node selection (paper §3.2, first algorithm).

For a homogeneous system, selecting for maximum available computation
capacity reduces to choosing the ``m`` compute nodes with the highest
``cpu = 1/(1+load)`` — linear time.  With a reference node capacity the
same procedure runs on scaled fractions (§3.3 heterogeneity).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from ..topology.graph import Node, TopologyGraph
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .types import NoFeasibleSelection, Selection

__all__ = ["select_max_compute", "top_compute_nodes"]


def top_compute_nodes(
    candidates: Iterable[Node],
    m: int,
    refs: References = DEFAULT_REFERENCES,
) -> list[Node]:
    """The ``m`` compute nodes with the highest compute fraction.

    Ties break by node name so results are reproducible.  This is the inner
    primitive shared by the compute and balanced algorithms; ``heapq`` keeps
    it O(n log m) — effectively the paper's O(n) for constant ``m``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    compute = [c for c in candidates if c.is_compute]
    if len(compute) < m:
        raise NoFeasibleSelection(
            f"need {m} compute nodes, only {len(compute)} available"
        )
    return heapq.nsmallest(
        m, compute, key=lambda n: (-node_compute_fraction(n, refs), n.name)
    )


def select_max_compute(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Select ``m`` nodes maximizing the minimum available CPU fraction.

    Parameters
    ----------
    graph:
        Topology snapshot (typically from a Remos query).
    m:
        Number of compute nodes required.
    refs:
        Reference capacities for heterogeneous systems.
    eligible:
        Optional predicate restricting candidate nodes (application
        placement constraints, §2.1).

    Returns
    -------
    Selection
        ``objective`` is the minimum compute fraction of the chosen set.

    Raises
    ------
    NoFeasibleSelection
        If fewer than ``m`` eligible compute nodes exist.
    """
    candidates = graph.compute_nodes()
    if eligible is not None:
        candidates = [n for n in candidates if eligible(n)]
    chosen = top_compute_nodes(candidates, m, refs)
    names = [n.name for n in chosen]
    mincpu = min_cpu_fraction(graph, names, refs)
    return Selection(
        nodes=names,
        objective=mincpu,
        min_cpu_fraction=mincpu,
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, names, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, names),
        algorithm="max-compute",
        iterations=0,
    )
