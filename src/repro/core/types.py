"""Shared result types for the selection algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ExtrasKey",
    "EXTRAS_SCHEMA",
    "Selection",
    "NoFeasibleSelection",
    "node_is_selectable",
]


class ExtrasKey:
    """The stable schema of :attr:`Selection.extras` keys.

    Every key a selection procedure may put in ``extras`` is declared here;
    producers reference these constants instead of ad-hoc strings, and
    consumers can rely on the meanings below staying stable across
    releases.  :data:`EXTRAS_SCHEMA` maps each key to its documentation.
    """

    #: Balanced algorithm's internal min CPU fraction of the winning
    #: component's chosen nodes (the conservative bound it maximized, which
    #: can differ from the exact path-based ``min_cpu_fraction``).
    ALG_MINCPU = "alg_mincpu"
    #: Balanced algorithm's internal min fractional bandwidth over the
    #: winning component's edges (``inf`` for an edgeless component).
    ALG_MINBW = "alg_minbw"
    #: Client/server placement: server node names, in rank order.
    SERVERS = "servers"
    #: Client/server placement: client node names, sorted.
    CLIENTS = "clients"
    #: Group placement: ``{group name: [node names]}`` for every group of
    #: the application spec.
    GROUP_NAMES = "group_names"
    #: Variable-m selection: the winning ``speedup(m) * minresource``
    #: estimate.
    ESTIMATED_RATE = "estimated_rate"
    #: Latency-bounded selection: the achieved pairwise latency diameter
    #: of the returned set, in seconds.
    MAX_LATENCY_S = "max_latency_s"
    #: Pattern-aware selection: max-min fair rate (bps) of the slowest
    #: flow when the declared pattern fires all at once.
    EFFECTIVE_PATTERN_BW_BPS = "effective_pattern_bw_bps"
    #: Name of the registry procedure the selector dispatched to (set by
    #: :meth:`repro.core.NodeSelector.select`).
    PROCEDURE = "procedure"
    #: Provenance record (:class:`repro.obs.ExplainRecord`) attached when
    #: the caller asked for ``explain=True``.
    EXPLAIN = "explain"


#: Key → meaning, for documentation and validation tooling.
EXTRAS_SCHEMA: dict[str, str] = {
    ExtrasKey.ALG_MINCPU: (
        "balanced: internal min CPU fraction of the winning component"
    ),
    ExtrasKey.ALG_MINBW: (
        "balanced: internal min fractional bandwidth of the winning "
        "component (inf when edgeless)"
    ),
    ExtrasKey.SERVERS: "client-server: server node names in rank order",
    ExtrasKey.CLIENTS: "client-server: client node names, sorted",
    ExtrasKey.GROUP_NAMES: "groups: {group name: [node names]}",
    ExtrasKey.ESTIMATED_RATE: (
        "variable-m: winning speedup(m) * minresource estimate"
    ),
    ExtrasKey.MAX_LATENCY_S: (
        "latency-bound: achieved pairwise latency diameter (s)"
    ),
    ExtrasKey.EFFECTIVE_PATTERN_BW_BPS: (
        "pattern-aware: max-min fair rate of the slowest simultaneous "
        "flow (bps)"
    ),
    ExtrasKey.PROCEDURE: "selector: registry procedure that produced this",
    ExtrasKey.EXPLAIN: (
        "selector: ExplainRecord provenance (present iff explain=True "
        "was requested)"
    ),
}


def node_is_selectable(node) -> bool:
    """False for nodes a snapshot marks failed or unmonitorable.

    ``attrs["down"]`` is set by the ground-truth oracle
    (:meth:`repro.network.cluster.Cluster.snapshot`) for crashed hosts;
    ``attrs["unmonitorable"]`` by degraded-mode Remos queries
    (:meth:`repro.remos.api.RemosAPI.topology`) for nodes whose monitoring
    went stale.  Selection must never place work on either.
    """
    attrs = node.attrs
    return not (attrs.get("down") or attrs.get("unmonitorable"))


class NoFeasibleSelection(Exception):
    """Raised when no node set satisfying the request exists.

    Examples: fewer than ``m`` compute nodes in the graph, no connected
    component with ``m`` compute nodes, or constraints (floors, group
    attributes) that no candidate set meets.
    """


@dataclass
class Selection:
    """The outcome of a node-selection run.

    Attributes
    ----------
    nodes:
        The selected compute node names (deterministic order).
    objective:
        Value of the criterion the algorithm maximized (semantics depend on
        the algorithm: bps for pure-bandwidth, a fraction for balanced/CPU).
    min_cpu_fraction:
        Exact minimum CPU fraction over the selected set.
    min_bw_fraction:
        Exact minimum fractional bandwidth between selected pairs.
    min_bw_bps:
        Exact minimum absolute bandwidth (bps) between selected pairs.
    algorithm:
        Name of the procedure that produced the selection.
    iterations:
        Number of edge-removal iterations performed (0 for O(n) selection).
    extras:
        Procedure-specific details.  Keys follow the stable schema of
        :class:`ExtrasKey` / :data:`EXTRAS_SCHEMA`; consumers should use
        those constants rather than string literals.
    """

    nodes: list[str]
    objective: float
    min_cpu_fraction: float = float("nan")
    min_bw_fraction: float = float("nan")
    min_bw_bps: float = float("nan")
    algorithm: str = ""
    iterations: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = list(self.nodes)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __iter__(self):
        return iter(self.nodes)
