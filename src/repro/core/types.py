"""Shared result types for the selection algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Selection", "NoFeasibleSelection", "node_is_selectable"]


def node_is_selectable(node) -> bool:
    """False for nodes a snapshot marks failed or unmonitorable.

    ``attrs["down"]`` is set by the ground-truth oracle
    (:meth:`repro.network.cluster.Cluster.snapshot`) for crashed hosts;
    ``attrs["unmonitorable"]`` by degraded-mode Remos queries
    (:meth:`repro.remos.api.RemosAPI.topology`) for nodes whose monitoring
    went stale.  Selection must never place work on either.
    """
    attrs = node.attrs
    return not (attrs.get("down") or attrs.get("unmonitorable"))


class NoFeasibleSelection(Exception):
    """Raised when no node set satisfying the request exists.

    Examples: fewer than ``m`` compute nodes in the graph, no connected
    component with ``m`` compute nodes, or constraints (floors, group
    attributes) that no candidate set meets.
    """


@dataclass
class Selection:
    """The outcome of a node-selection run.

    Attributes
    ----------
    nodes:
        The selected compute node names (deterministic order).
    objective:
        Value of the criterion the algorithm maximized (semantics depend on
        the algorithm: bps for pure-bandwidth, a fraction for balanced/CPU).
    min_cpu_fraction:
        Exact minimum CPU fraction over the selected set.
    min_bw_fraction:
        Exact minimum fractional bandwidth between selected pairs.
    min_bw_bps:
        Exact minimum absolute bandwidth (bps) between selected pairs.
    algorithm:
        Name of the procedure that produced the selection.
    iterations:
        Number of edge-removal iterations performed (0 for O(n) selection).
    """

    nodes: list[str]
    objective: float
    min_cpu_fraction: float = float("nan")
    min_bw_fraction: float = float("nan")
    min_bw_bps: float = float("nan")
    algorithm: str = ""
    iterations: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = list(self.nodes)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __iter__(self):
        return iter(self.nodes)
