"""Incremental edge-peeling kernel for the Figure 2/3 selection algorithms.

The naive implementations (:mod:`repro.core.reference`) re-derive everything
from scratch after every edge removal: a full scan for the minimum-bandwidth
link, a BFS for connected components, and a fresh candidate ranking per
component.  That is O(E · (V + E)) per selection and dominates the admission
path of the multi-tenant service once topologies grow past a few hundred
nodes.

The kernel exploits the structural fact that makes the peeling loops cheap:
**the peel order is fixed up front**.  Edge ``i`` is removed before edge
``j`` iff ``(metric(i), endpoints(i)) < (metric(j), endpoints(j))`` — the
exact tie-break :meth:`TopologyGraph.min_bandwidth_link` applies — and the
metric of an edge never changes while peeling (the graph is only ever
*shrunk*).  So instead of simulating removals forward, the kernel:

1. sorts the edges once into peel order (``min_bandwidth_link`` full scans
   disappear);
2. replays the peel **in reverse** — starting from the fully peeled graph
   and *adding* edges strongest-first — so connected components are
   maintained by a union-find instead of repeated BFS;
3. keeps per-component statistics that merge in O(m) when two components
   join: the eligible-compute count, the top-``m`` compute heap (any
   top-``m`` node of a merged component is a top-``m`` node of one side),
   and the component's minimum edge fraction (the edge being added is, by
   construction, the globally weakest edge seen so far, so it *is* the new
   minimum of whichever component absorbs it);
4. tracks the best feasible component per peel step through a
   lazy-deletion heap ordered by ``(-score, first-insertion-index)`` —
   the same "first component wins score ties" rule the forward scan's
   strict-improvement update produces.

Reverse state after adding edges ``t..E-1`` is exactly the forward state
after ``t`` removals, so the recorded per-step bests let a final O(E) pass
reproduce the naive algorithms' results — selected nodes, objective,
iteration count, and reported extras are bit-identical, which
``tests/core/test_kernel_differential.py`` enforces property-wise.

Total cost: O(E log E) for the sort, O((V + E) · (m + log E)) for the
reverse replay — effectively linearithmic, versus the reference's
quadratic-in-edges loop.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..topology.graph import Link, Node, TopologyGraph
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    link_bandwidth_fraction,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .types import ExtrasKey, NoFeasibleSelection, Selection

__all__ = [
    "peel_order",
    "kernel_select_balanced",
    "kernel_select_max_bandwidth",
    "kernel_select_with_bandwidth_floor",
]

_INF = float("inf")


def peel_order(
    graph: TopologyGraph, metric: Callable[[Link], float]
) -> list[tuple[float, Link]]:
    """Links in the exact order the naive peeling loops remove them.

    Ascending by ``(metric, sorted endpoint names)`` — the tie-break
    :meth:`TopologyGraph.min_bandwidth_link` uses, so equal-metric edges
    peel in the same deterministic order as the reference implementation.
    """
    edges = [(metric(link), link) for link in graph.links()]
    edges.sort(key=lambda e: (e[0], (e[1].u, e[1].v) if e[1].u < e[1].v
                              else (e[1].v, e[1].u)))
    return edges


def _schedule(
    graph: TopologyGraph, kind: str, refs: References,
    metric: Callable[[Link], float],
) -> list[tuple[float, Link]]:
    """The peel schedule for ``graph``, via its provider hook if attached.

    A graph may carry a ``peel_schedule_provider`` attribute — a callable
    ``(kind, refs, metric) -> list[(metric_value, Link)]`` returning the
    exact list :func:`peel_order` would build (only ``link.u``/``link.v``
    and the metric value are consumed, so entries may reference link
    objects of a structurally identical graph).  The selection service
    attaches one backed by an epoch-keyed schedule cache
    (:class:`repro.service.PeelScheduleCache`) so repeated selections
    against one snapshot skip the O(E log E) sort; bare graphs sort as
    before.  ``kind`` names the metric family (``"bw-fraction"`` for the
    Figure 3 peel, ``"available"`` for Figure 2) so providers can key
    their memoization without inspecting the closure.
    """
    provider = getattr(graph, "peel_schedule_provider", None)
    if provider is not None:
        schedule = provider(kind, refs, metric)
        if schedule is not None:
            return schedule
    return peel_order(graph, metric)


class _PeelState:
    """Union-find over the reverse peel with per-component selection stats.

    Components carry: the count of eligible compute nodes, the top-``m``
    of them as a sorted list of ``(-fraction, name)`` keys (the ordering
    :func:`repro.core.compute.top_compute_nodes` produces), the minimum
    edge fraction inside the component, the smallest node-insertion index
    (the enumeration order of ``connected_components()``), and the
    lexicographically smallest member name (the Figure 2 tie-break).
    """

    def __init__(
        self,
        graph: TopologyGraph,
        m: int,
        refs: References,
        eligible: Optional[Callable[[Node], bool]],
        track_scores: bool,
    ) -> None:
        self.m = m
        self.refs = refs
        self.track_scores = track_scores
        names = graph.node_names()
        self.index: dict[str, int] = {n: i for i, n in enumerate(names)}
        n = len(names)
        self.parent = list(range(n))
        self.rank = [0] * n
        self.count = [0] * n
        self.topm: list[list[tuple[float, str]]] = [[] for _ in range(n)]
        self.min_edge = [_INF] * n
        self.order = list(range(n))
        self.min_name = names
        self.num_candidates = 0
        self.num_components = n
        # Lazy-deletion heap of (-score, order, root, version, record).
        self._heap: list[tuple] = []
        self._version = [0] * n
        for i, name in enumerate(names):
            node = graph.node(name)
            if node.is_compute and (eligible is None or eligible(node)):
                self.count[i] = 1
                self.topm[i] = [(-node_compute_fraction(node, refs), name)]
                self.num_candidates += 1
                if track_scores and m == 1:
                    self._push(i)

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def _merge_topm(
        self, a: list[tuple[float, str]], b: list[tuple[float, str]]
    ) -> list[tuple[float, str]]:
        """Merge two sorted top-m lists, keeping the best ``m`` entries."""
        m = self.m
        out: list[tuple[float, str]] = []
        i = j = 0
        la, lb = len(a), len(b)
        while len(out) < m and (i < la or j < lb):
            if j >= lb or (i < la and a[i] <= b[j]):
                out.append(a[i])
                i += 1
            else:
                out.append(b[j])
                j += 1
        return out

    def _record(self, root: int) -> tuple[float, tuple[str, ...], float, float]:
        """(score, chosen names, mincpu, min edge fraction) for a root."""
        refs = self.refs
        top = self.topm[root]
        mincpu = -top[self.m - 1][0]
        minbw = self.min_edge[root]
        score = min(refs.scale_cpu(mincpu), refs.scale_bw(minbw))
        return score, tuple(name for _, name in top), mincpu, minbw

    def _push(self, root: int) -> None:
        if self.count[root] < self.m:
            return
        rec = self._record(root)
        heapq.heappush(
            self._heap,
            (-rec[0], self.order[root], root, self._version[root], rec),
        )

    def peek(self) -> Optional[tuple[float, tuple[str, ...], float, float]]:
        """Best current feasible component's record (stale entries pruned)."""
        heap = self._heap
        while heap:
            _, _, root, version, rec = heap[0]
            if self.parent[root] == root and self._version[root] == version:
                return rec
            heapq.heappop(heap)
        return None

    def add_edge(self, u: str, v: str, fraction: float) -> int:
        """Add one reverse-peel edge; returns the resulting root.

        ``fraction`` must be non-increasing across calls (reverse peel
        order), which is what makes ``min_edge`` maintenance O(1): the new
        edge is always the weakest edge of the component it lands in.
        """
        ra = self.find(self.index[u])
        rb = self.find(self.index[v])
        if ra == rb:
            # Cycle edge: the component keeps its nodes, its floor drops.
            self.min_edge[ra] = fraction
            if self.track_scores:
                self._version[ra] += 1
                self._push(ra)
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        elif self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parent[rb] = ra
        self.count[ra] += self.count[rb]
        self.topm[ra] = self._merge_topm(self.topm[ra], self.topm[rb])
        self.topm[rb] = []
        self.min_edge[ra] = fraction
        if self.order[rb] < self.order[ra]:
            self.order[ra] = self.order[rb]
        if self.min_name[rb] < self.min_name[ra]:
            self.min_name[ra] = self.min_name[rb]
        self.num_components -= 1
        if self.track_scores:
            self._version[ra] += 1
            self._version[rb] += 1
            self._push(ra)
        return ra


def _finish(
    graph: TopologyGraph,
    names: list[str],
    refs: References,
    *,
    objective: float,
    algorithm: str,
    iterations: int,
    extras: Optional[dict] = None,
) -> Selection:
    return Selection(
        nodes=names,
        objective=objective,
        min_cpu_fraction=min_cpu_fraction(graph, names, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, names, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, names),
        algorithm=algorithm,
        iterations=iterations,
        extras=extras or {},
    )


def kernel_select_balanced(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    strict_greedy: bool = False,
) -> Selection:
    """Incremental Figure 3: identical output to the naive reference.

    See :func:`repro.core.select_balanced` for the algorithm contract; this
    is the fast path it dispatches to.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    state = _PeelState(graph, m, refs, eligible, track_scores=True)
    if state.num_candidates < m:
        raise NoFeasibleSelection(
            f"need {m} eligible compute nodes, "
            f"only {state.num_candidates} exist"
        )
    edges = _schedule(
        graph, "bw-fraction", refs,
        lambda l: link_bandwidth_fraction(l, refs),
    )
    k = len(edges)

    # Reverse replay: records[t] is the best feasible component of the
    # forward state after t removals (None when no component is feasible).
    records: list[Optional[tuple[float, tuple[str, ...], float, float]]] = \
        [None] * (k + 1)
    records[k] = state.peek()
    for j in range(k - 1, -1, -1):
        fraction, link = edges[j]
        state.add_edge(link.u, link.v, fraction)
        records[j] = state.peek()

    initial = records[0]
    if initial is None:
        raise NoFeasibleSelection(
            f"no connected component with {m} eligible compute nodes"
        )
    best_score, best_nodes, best_cpu, best_bw = initial

    # Forward scan over the recorded per-step bests, reproducing the naive
    # loop's stopping rules and strict-improvement updates.
    iterations = k
    for t in range(1, k + 1):
        rec = records[t]
        if rec is None:
            iterations = t
            break
        improved = rec[0] > best_score
        if improved:
            best_score, best_nodes, best_cpu, best_bw = rec
        if strict_greedy and not improved:
            iterations = t
            break

    return _finish(
        graph,
        list(best_nodes),
        refs,
        objective=best_score,
        algorithm="balanced",
        iterations=iterations,
        extras={ExtrasKey.ALG_MINCPU: best_cpu, ExtrasKey.ALG_MINBW: best_bw},
    )


def kernel_select_max_bandwidth(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Incremental Figure 2: identical output to the naive reference.

    The forward loop keeps peeling while the largest component still holds
    ``m`` eligible compute nodes, so its answer is the pick from the *last*
    feasible state.  In reverse that is simply the first state at which any
    component reaches ``m`` candidates — the replay stops there.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    state = _PeelState(graph, m, refs, eligible, track_scores=False)
    edges = _schedule(graph, "available", refs, lambda l: l.available)
    k = len(edges)

    best_root: Optional[int] = None
    t_max = k
    if m == 1 and state.num_candidates:
        # The fully peeled graph is already feasible: the forward loop runs
        # out of edges and its last pick is the largest (count, min-name)
        # singleton — the smallest-named candidate.
        best_root = min(
            (i for i in range(len(state.parent)) if state.count[i]),
            key=lambda i: state.min_name[i],
        )
    else:
        for j in range(k - 1, -1, -1):
            fraction, link = edges[j]
            root = state.add_edge(link.u, link.v, fraction)
            if state.count[root] >= m:
                # First feasible reverse state == last feasible forward
                # state; only the just-merged component can qualify.
                best_root = root
                t_max = j
                break
        if best_root is None:
            raise NoFeasibleSelection(
                f"no connected component with {m} eligible compute nodes"
            )

    selected = [name for _, name in state.topm[best_root]]
    iterations = min(t_max + 1, k)
    min_bw = min_pairwise_bandwidth(graph, selected)
    return _finish(
        graph,
        selected,
        refs,
        objective=min_bw,
        algorithm="max-bandwidth",
        iterations=iterations,
    )


def kernel_select_with_bandwidth_floor(
    graph: TopologyGraph,
    m: int,
    *,
    floor_bps: float,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Bandwidth-floor selection without copying or mutating the graph.

    Components of the floor-filtered graph come from one union-find pass
    over the surviving links; each feasible component contributes its
    top-``m`` pick and the best ``(mincpu, names)`` wins — ``names``
    breaking ties exactly like the naive reference.
    """
    if floor_bps < 0:
        raise ValueError(f"floor must be non-negative, got {floor_bps}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    state = _PeelState(graph, m, refs, eligible, track_scores=False)
    for link in graph.links():
        if link.available >= floor_bps:
            state.add_edge(link.u, link.v, 0.0)

    best: Optional[tuple[float, tuple[str, ...]]] = None
    for i in range(len(state.parent)):
        if state.parent[i] != i or state.count[i] < m:
            continue
        top = state.topm[i]
        mincpu = -top[m - 1][0]
        names = tuple(name for _, name in top)
        if best is None or mincpu > best[0] or (
            mincpu == best[0] and list(names) < list(best[1])
        ):
            best = (mincpu, names)
    if best is None:
        raise NoFeasibleSelection(
            f"no component of {m} compute nodes meets a "
            f"{floor_bps / 1e6:.1f} Mbps pairwise floor"
        )
    mincpu, names = best
    return _finish(
        graph,
        list(names),
        refs,
        objective=mincpu,
        algorithm="bandwidth-floor",
        iterations=0,
    )
