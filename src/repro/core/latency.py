"""Latency-bounded selection (§3.4 "latency and other considerations").

The paper's procedures use only load and bandwidth, noting that "a number
of other factors can affect application performance, some examples being
latency on the links ... Remos API includes this information and we plan
to take these factors into consideration in future work."  This module is
that future work for latency: select nodes under a bound on the maximum
pairwise path latency (tightly-coupled codes cannot tolerate cross-campus
round trips), maximizing the balanced objective among feasible sets.

On a tree topology any node set with pairwise latency diameter ≤ D lies
inside a latency ball of radius D/2 around some point; enumerating balls
centred on nodes (and verifying each candidate exactly) yields a sound
and, in practice, exhaustive search at topology scale.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .balanced import select_balanced
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    minresource,
)
from .types import ExtrasKey, NoFeasibleSelection, Selection

__all__ = ["max_pairwise_latency", "select_with_latency_bound"]


def max_pairwise_latency(graph: TopologyGraph, nodes) -> float:
    """The latency diameter of a node set (``inf`` if any pair is
    disconnected, ``0`` for singletons)."""
    names = list(nodes)
    worst = 0.0
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            worst = max(worst, graph.path_latency(a, b))
    return worst


def select_with_latency_bound(
    graph: TopologyGraph,
    m: int,
    *,
    max_latency_s: float,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Select ``m`` nodes whose pairwise latency never exceeds the bound,
    maximizing the exact balanced objective among feasible candidates.

    Strategy: if the unconstrained balanced choice already satisfies the
    bound, keep it.  Otherwise enumerate latency balls of radius
    ``max_latency_s / 2`` centred on each node, run the balanced selection
    restricted to each ball, verify the bound exactly, and return the
    best-scoring verified set.

    Raises
    ------
    NoFeasibleSelection
        If no ball contains a verified feasible set.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if max_latency_s < 0:
        raise ValueError("latency bound cannot be negative")

    def feasible(names) -> bool:
        return max_pairwise_latency(graph, names) <= max_latency_s + 1e-15

    try:
        unconstrained = select_balanced(graph, m, refs=refs, eligible=eligible)
        if feasible(unconstrained.nodes):
            unconstrained.algorithm = "latency-bound"
            unconstrained.extras[ExtrasKey.MAX_LATENCY_S] = max_pairwise_latency(
                graph, unconstrained.nodes
            )
            return unconstrained
    except NoFeasibleSelection:
        raise

    radius = max_latency_s / 2.0
    best: Optional[tuple[float, Selection]] = None
    compute_names = {n.name for n in graph.compute_nodes()}
    for center in graph.node_names():
        ball = {
            name for name in compute_names
            if graph.path_latency(center, name) <= radius + 1e-15
        }
        if len(ball) < m:
            continue

        def in_ball(node: Node, ball=ball) -> bool:
            if node.name not in ball:
                return False
            return eligible is None or eligible(node)

        try:
            sel = select_balanced(graph, m, refs=refs, eligible=in_ball)
        except NoFeasibleSelection:
            continue
        if not feasible(sel.nodes):
            continue
        score = minresource(graph, sel.nodes, refs)
        if best is None or score > best[0]:
            best = (score, sel)
    if best is None:
        raise NoFeasibleSelection(
            f"no set of {m} compute nodes within a "
            f"{max_latency_s * 1e3:.3g} ms latency diameter"
        )
    _score, sel = best
    sel.algorithm = "latency-bound"
    sel.extras[ExtrasKey.MAX_LATENCY_S] = max_pairwise_latency(graph, sel.nodes)
    return sel
