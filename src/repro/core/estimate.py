"""Application runtime estimation on a candidate placement (§3.4).

The paper notes that choosing the *number* of nodes "ha[s] to be coupled
with methods for performance estimation" (citing Fahringer and
Schopf/Berman).  This module provides such a method for the loosely
synchronous phase-structured applications the evaluation uses: given a
workload description (compute demand + communication pattern and volume
per iteration) and a placement on an annotated topology, predict the
execution time from

- the placement's minimum available CPU fraction (the slowest node gates
  every loosely synchronous phase), and
- the *effective* bandwidth of the pattern's simultaneous flows
  (:mod:`repro.core.pattern_aware`), which gates every exchange.

The estimate feeds :func:`repro.core.select_variable_nodes` (via
:func:`speedup_model`) and gives launchers an absolute time prediction
that bench ``bench_estimator`` validates against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..topology.graph import TopologyGraph
from ..topology.routing import RoutingTable
from ..units import BITS_PER_BYTE
from .metrics import DEFAULT_REFERENCES, References, node_compute_fraction
from .pattern_aware import effective_pattern_bandwidth
from .spec import CommPattern

__all__ = ["PhaseWorkload", "estimate_runtime", "speedup_model"]


@dataclass(frozen=True)
class PhaseWorkload:
    """One iterated phase of a loosely synchronous application.

    Attributes
    ----------
    compute_seconds_total:
        Aggregate dedicated-CPU seconds per iteration across all ranks
        (divided evenly over the placement).
    comm_bytes_per_pair:
        Bytes each rank ships to each *pattern peer* per iteration.
    pattern:
        Communication pattern of the exchange (:class:`CommPattern`).
    iterations:
        Number of iterations of this phase.
    """

    compute_seconds_total: float = 0.0
    comm_bytes_per_pair: float = 0.0
    pattern: str = CommPattern.ALL_TO_ALL
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.compute_seconds_total < 0 or self.comm_bytes_per_pair < 0:
            raise ValueError("workload quantities cannot be negative")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.pattern not in CommPattern.ALL:
            raise ValueError(f"unknown pattern {self.pattern!r}")


def estimate_runtime(
    graph: TopologyGraph,
    nodes: Sequence[str],
    phases: Sequence[PhaseWorkload],
    refs: References = DEFAULT_REFERENCES,
    base_capacity: float = 1.0,
    routing: Optional[RoutingTable] = None,
) -> float:
    """Predicted execution time (seconds) of ``phases`` on ``nodes``.

    Per iteration of each phase:

    - compute time = (total / m) / (min CPU fraction × base_capacity) —
      loosely synchronous codes wait for the slowest node;
    - comm time = per-pair bytes / effective per-flow bandwidth of the
      pattern fired simultaneously.

    Returns ``inf`` for infeasible placements (disconnected pairs).
    """
    names = list(nodes)
    if not names:
        raise ValueError("placement must name at least one node")
    m = len(names)
    routing = routing or RoutingTable(graph)
    min_cpu = min(
        node_compute_fraction(graph.node(n), refs) for n in names
    )
    total = 0.0
    for phase in phases:
        compute = 0.0
        if phase.compute_seconds_total > 0:
            if min_cpu <= 0:
                return float("inf")
            compute = (phase.compute_seconds_total / m) / (
                min_cpu * base_capacity
            )
        comm = 0.0
        if phase.comm_bytes_per_pair > 0 and m > 1:
            eff = effective_pattern_bandwidth(
                graph, names, phase.pattern, routing
            )
            if eff <= 0:
                return float("inf")
            if eff != float("inf"):
                comm = phase.comm_bytes_per_pair * BITS_PER_BYTE / eff
        total += phase.iterations * (compute + comm)
    return total


def speedup_model(
    graph: TopologyGraph,
    phases: Sequence[PhaseWorkload],
    refs: References = DEFAULT_REFERENCES,
    base_capacity: float = 1.0,
):
    """A ``m -> relative speed`` callable for variable-m selection (§3.4).

    Speed at ``m`` is ``T(1-node equivalent) / T(best m nodes)`` estimated
    on an *idle copy* of the topology, so it captures the serial
    communication overhead growth that caps useful parallelism.  The
    returned callable is what :func:`repro.core.select_variable_nodes`
    expects.
    """
    from .balanced import select_balanced
    from .types import NoFeasibleSelection

    idle = graph.copy()
    for node in idle.nodes():
        node.load_average = 0.0
    for link in idle.links():
        link.set_available(link.maxbw)

    serial = sum(p.iterations * p.compute_seconds_total for p in phases)
    serial /= base_capacity

    def speedup(m: int) -> float:
        try:
            placement = select_balanced(idle, m, refs=refs).nodes
        except NoFeasibleSelection:
            return 0.0
        t = estimate_runtime(idle, placement, phases, refs, base_capacity)
        if t <= 0 or t == float("inf"):
            return 0.0
        return serial / t if serial > 0 else 1.0 / t

    return speedup
