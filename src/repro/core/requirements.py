"""Node resource requirements (§2.1 / §3.4 "memory and disk availability").

The application specification interface (§2.1) lets programs state hard
per-node requirements — architecture, memory, disk, explicit host lists.
This module turns such requirements into the ``eligible`` predicates every
selection procedure accepts, so constraints compose uniformly with all
algorithms.

Node attributes used (all optional, set via ``Node.attrs``):

- ``arch`` — architecture string (e.g. ``"alpha"``);
- ``memory_bytes`` — installed memory;
- ``free_disk_bytes`` — available scratch space;
- arbitrary keys matched exactly through ``attrs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..topology.graph import Node

__all__ = ["NodeRequirements"]


@dataclass(frozen=True)
class NodeRequirements:
    """Hard per-node requirements, composable into an eligibility predicate.

    Examples
    --------
    >>> reqs = NodeRequirements(arch="alpha", min_memory_bytes=256 << 20)
    >>> sel = select_balanced(graph, 4, eligible=reqs.predicate())
    ... # doctest: +SKIP
    """

    arch: Optional[str] = None
    min_memory_bytes: Optional[float] = None
    min_free_disk_bytes: Optional[float] = None
    allowed_nodes: Optional[Sequence[str]] = None
    forbidden_nodes: Sequence[str] = ()
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Maximum acceptable load average (a soft-capacity requirement some
    #: launchers impose on top of the optimizer).
    max_load_average: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("min_memory_bytes", "min_free_disk_bytes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} cannot be negative")
        if self.max_load_average is not None and self.max_load_average < 0:
            raise ValueError("max_load_average cannot be negative")

    def admits(self, node: Node) -> bool:
        """True if ``node`` satisfies every stated requirement."""
        if self.allowed_nodes is not None and node.name not in self.allowed_nodes:
            return False
        if node.name in self.forbidden_nodes:
            return False
        if self.arch is not None and node.attrs.get("arch") != self.arch:
            return False
        if self.min_memory_bytes is not None:
            if node.attrs.get("memory_bytes", 0) < self.min_memory_bytes:
                return False
        if self.min_free_disk_bytes is not None:
            if node.attrs.get("free_disk_bytes", 0) < self.min_free_disk_bytes:
                return False
        if self.max_load_average is not None:
            if node.load_average > self.max_load_average:
                return False
        for key, want in self.attrs.items():
            if node.attrs.get(key) != want:
                return False
        return True

    def predicate(
        self, extra: Optional[Callable[[Node], bool]] = None
    ) -> Callable[[Node], bool]:
        """An ``eligible`` callable for the selection procedures.

        ``extra`` composes an additional predicate with AND semantics.
        """
        if extra is None:
            return self.admits
        return lambda node: self.admits(node) and extra(node)

    def __and__(self, other: "NodeRequirements") -> Callable[[Node], bool]:
        """Conjunction of two requirement sets (as a predicate)."""
        return lambda node: self.admits(node) and other.admits(node)
