"""Baseline selection procedures used in the paper's evaluation (§4.3).

- **Random selection**: the paper's experimental control.  "Random node
  selection and node selection based on static network properties give
  virtually identical performance on a small testbed with all high speed
  links", so the random results also stand in for static procedures.
- **Static selection**: chooses on *peak* capacities only (ignores current
  load/traffic) — deterministic and reproducible.
- **Exhaustive selection**: brute-force optimum under an exact objective.
  Exponential; used by tests and benchmarks to certify the greedy
  algorithms, never by the runtime framework.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Optional

import numpy as np

from ..topology.graph import Node, TopologyGraph
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    minresource,
)
from .types import NoFeasibleSelection, Selection

__all__ = ["select_random", "select_static", "select_exhaustive"]


def _finish(graph: TopologyGraph, names: list[str], algorithm: str,
            objective: float, refs: References, iterations: int = 0) -> Selection:
    return Selection(
        nodes=names,
        objective=objective,
        min_cpu_fraction=min_cpu_fraction(graph, names, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, names, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, names),
        algorithm=algorithm,
        iterations=iterations,
    )


def _candidates(
    graph: TopologyGraph, m: int, eligible: Optional[Callable[[Node], bool]]
) -> list[Node]:
    nodes = [
        n for n in graph.compute_nodes()
        if eligible is None or eligible(n)
    ]
    if len(nodes) < m:
        raise NoFeasibleSelection(
            f"need {m} eligible compute nodes, only {len(nodes)} exist"
        )
    return nodes


def select_random(
    graph: TopologyGraph,
    m: int,
    *,
    rng: np.random.Generator,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    require_connected: bool = True,
) -> Selection:
    """Uniformly random ``m`` compute nodes (the paper's control arm).

    With ``require_connected`` (default), resamples until the chosen nodes
    can all reach each other — a disconnected placement cannot run the
    application at all, and the paper's random runs were of course always
    runnable.  Raises if no connected choice exists.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    nodes = _candidates(graph, m, eligible)
    names = sorted(n.name for n in nodes)

    def connected(subset: list[str]) -> bool:
        comp = graph.component_of(subset[0])
        return all(n in comp for n in subset[1:])

    if require_connected:
        feasible_exists = any(
            sum(
                1
                for n in comp
                if graph.node(n).is_compute
                and (eligible is None or eligible(graph.node(n)))
            ) >= m
            for comp in graph.connected_components()
        )
        if not feasible_exists:
            raise NoFeasibleSelection(
                f"no connected component with {m} eligible compute nodes"
            )
        while True:
            pick = sorted(rng.choice(names, size=m, replace=False).tolist())
            if connected(pick):
                break
    else:
        pick = sorted(rng.choice(names, size=m, replace=False).tolist())

    return _finish(graph, pick, "random", float("nan"), refs)


def select_static(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Select on *peak* capacities, ignoring current load and traffic.

    Nodes are ranked by peak compute capacity (name-tie-broken), which on a
    homogeneous testbed degenerates to a fixed deterministic choice —
    matching the paper's observation that static selection behaves like
    random selection there.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    nodes = _candidates(graph, m, eligible)
    ranked = sorted(nodes, key=lambda n: (-n.compute_capacity, n.name))
    pick = [n.name for n in ranked[:m]]
    return _finish(graph, pick, "static", float("nan"), refs)


def select_exhaustive(
    graph: TopologyGraph,
    m: int,
    *,
    objective: str = "balanced",
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Brute-force optimal selection under an exact objective.

    Parameters
    ----------
    objective:
        ``"bandwidth"`` — exact min pairwise available bandwidth (bps);
        ``"compute"``  — min CPU fraction;
        ``"balanced"`` — exact ``minresource`` (path-based, not the
        conservative component bound the greedy uses).

    Only sets whose nodes are mutually connected are considered.  Intended
    for small graphs (tests/benchmarks); cost is C(n, m) objective
    evaluations.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if objective not in ("bandwidth", "compute", "balanced"):
        raise ValueError(f"unknown objective {objective!r}")
    nodes = _candidates(graph, m, eligible)
    names = sorted(n.name for n in nodes)

    def score(subset: tuple[str, ...]) -> float:
        comp = graph.component_of(subset[0])
        if not all(n in comp for n in subset[1:]):
            return float("-inf")
        subset_l = list(subset)
        if objective == "bandwidth":
            return min_pairwise_bandwidth(graph, subset_l)
        if objective == "compute":
            return min_cpu_fraction(graph, subset_l, refs)
        return minresource(graph, subset_l, refs)

    best: Optional[tuple[str, ...]] = None
    best_score = float("-inf")
    for subset in combinations(names, m):
        s = score(subset)
        if s > best_score:
            best, best_score = subset, s
    if best is None or best_score == float("-inf"):
        raise NoFeasibleSelection(
            f"no connected subset of {m} eligible compute nodes"
        )
    return _finish(
        graph, list(best), f"exhaustive-{objective}", best_score, refs
    )
