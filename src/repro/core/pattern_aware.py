"""Pattern-aware node selection (addressing the §3.4 limitation).

The paper computes availability of bandwidth between pairs of nodes
*independently*, and notes the limitation: "if multiple communication
operations in an application happen at exactly the same time and share a
network link, then one or both may achieve a lower effective bandwidth ...
this is a difficult problem that is not addressed by this research."

This module addresses it for declared communication patterns.  Given the
application's pattern (§2.1: all-to-all, master-slave, ring, pipeline), a
candidate node set induces a concrete set of simultaneous flows; running
the max-min fair allocation (:mod:`repro.network.fairshare`) of those
flows over the links' *available* capacities yields the **effective
bandwidth** the slowest operation would see with everything firing at
once.  :func:`select_pattern_aware` then improves a balanced seed
selection by local search on the combined objective
``min(scaled min-CPU, effective bandwidth / reference)``.

Example where this matters: on a dumbbell with ample per-pair bandwidth,
an all-to-all across the trunk piles O(m²/4) flows onto one link — the
pairwise view says every pair has full bandwidth, the pattern-aware view
correctly prefers co-locating the set.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..network.fairshare import max_min_fair
from ..topology.graph import Node, TopologyGraph
from ..topology.routing import RoutingTable
from .balanced import select_balanced
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .spec import CommPattern
from .types import ExtrasKey, Selection

__all__ = [
    "pattern_flows",
    "effective_pattern_bandwidth",
    "select_pattern_aware",
]


def pattern_flows(
    nodes: Sequence[str], pattern: str, master: Optional[str] = None
) -> list[tuple[str, str]]:
    """The simultaneous (src, dst) flows a pattern induces on a node set.

    - ``all-to-all``: every ordered pair (the FFT transpose).
    - ``master-slave``: master→slave and slave→master for every slave
      (``master`` defaults to the first node).
    - ``ring``: each node sends to both neighbours.
    - ``pipeline``: node i sends to node i+1.
    - ``none``: no flows.
    """
    names = list(nodes)
    if len(names) < 2 or pattern == CommPattern.NONE:
        return []
    if pattern == CommPattern.ALL_TO_ALL:
        return [(a, b) for a in names for b in names if a != b]
    if pattern == CommPattern.MASTER_SLAVE:
        root = master if master is not None else names[0]
        if root not in names:
            raise ValueError(f"master {root!r} not in the node set")
        out = []
        for n in names:
            if n != root:
                out.append((root, n))
                out.append((n, root))
        return out
    if pattern == CommPattern.RING:
        out = []
        for i, a in enumerate(names):
            out.append((a, names[(i + 1) % len(names)]))
            out.append((a, names[(i - 1) % len(names)]))
        # A 2-ring degenerates to duplicated pairs; dedup preserves order.
        seen = set()
        uniq = []
        for f in out:
            if f not in seen:
                seen.add(f)
                uniq.append(f)
        return uniq
    if pattern == CommPattern.PIPELINE:
        return [(a, b) for a, b in zip(names, names[1:])]
    raise ValueError(f"unknown pattern {pattern!r}")


def effective_pattern_bandwidth(
    graph: TopologyGraph,
    nodes: Sequence[str],
    pattern: str,
    routing: Optional[RoutingTable] = None,
    master: Optional[str] = None,
) -> float:
    """Max-min fair rate of the slowest flow when the pattern fires at once.

    Capacities are the links' *available* bandwidths (background traffic
    already subtracted), one channel per direction (or one shared channel
    for half-duplex links).  Returns ``inf`` when the pattern induces no
    flows and ``0`` when any required pair is disconnected.
    """
    flows = pattern_flows(nodes, pattern, master=master)
    if not flows:
        return float("inf")
    routing = routing or RoutingTable(graph)
    routes: dict[int, list] = {}
    caps: dict = {}
    for i, (src, dst) in enumerate(flows):
        path = routing.route(src, dst)
        if path is None:
            return 0.0
        chans = []
        for a, b in zip(path, path[1:]):
            link = graph.link(a, b)
            if link.attrs.get("duplex") == "half":
                cid = (link.key, "shared")
                caps[cid] = link.available
            else:
                cid = (link.key, b)
                caps[cid] = link.available_towards(b)
            chans.append(cid)
        routes[i] = chans
    rates = max_min_fair(routes, caps)
    return min(rates.values())


def select_pattern_aware(
    graph: TopologyGraph,
    m: int,
    *,
    pattern: str,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    max_passes: int = 8,
) -> Selection:
    """Select ``m`` nodes maximizing the pattern-aware balanced objective.

    Seeds with the Figure 3 balanced selection, then hill-climbs with
    single-node swaps on

        ``min(scaled min-CPU fraction, effective pattern bw / reference)``

    where the reference bandwidth is ``refs.link_bandwidth`` (or the
    largest link capacity).  The seed guarantees the result is never worse
    than plain balanced selection *under this objective*.

    For ``master-slave`` patterns the master is taken to be the
    highest-CPU node of the candidate set at evaluation time.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    routing = RoutingTable(graph)
    ref_bw = refs.link_bandwidth or max(
        (l.maxbw for l in graph.links()), default=1.0
    )

    def master_of(names: Sequence[str]) -> Optional[str]:
        if pattern != CommPattern.MASTER_SLAVE:
            return None
        return max(
            names,
            key=lambda n: (node_compute_fraction(graph.node(n), refs), n),
        )

    def score(names: Sequence[str]) -> float:
        cpu = refs.scale_cpu(min_cpu_fraction(graph, names, refs))
        eff = effective_pattern_bandwidth(
            graph, names, pattern, routing, master=master_of(names)
        )
        bw = refs.scale_bw(min(eff / ref_bw, 1.0) if eff != float("inf") else 1.0)
        return min(cpu, bw)

    seed = select_balanced(graph, m, refs=refs, eligible=eligible)
    current = list(seed.nodes)
    current_score = score(current)

    candidates = [
        n.name for n in graph.compute_nodes()
        if (eligible is None or eligible(n))
    ]
    passes = 0
    improved = True
    while improved and passes < max_passes:
        improved = False
        passes += 1
        outside = [c for c in candidates if c not in current]
        best_swap = None
        best_score = current_score
        for i, old in enumerate(current):
            for new in outside:
                trial = current[:i] + [new] + current[i + 1:]
                s = score(trial)
                if s > best_score + 1e-12:
                    best_score = s
                    best_swap = (i, new)
        if best_swap is not None:
            i, new = best_swap
            current[i] = new
            current_score = best_score
            improved = True
    current.sort()

    eff = effective_pattern_bandwidth(
        graph, current, pattern, routing, master=master_of(current)
    )
    return Selection(
        nodes=current,
        objective=current_score,
        min_cpu_fraction=min_cpu_fraction(graph, current, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, current, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, current),
        algorithm=f"pattern-aware-{pattern}",
        iterations=passes,
        extras={ExtrasKey.EFFECTIVE_PATTERN_BW_BPS: eff},
    )
