"""Naive reference implementations of the edge-peeling algorithms.

These are the direct transcriptions of the paper's Figure 2 and Figure 3
loops (and the §3.3 bandwidth-floor variant) that the public entry points
in :mod:`repro.core.balanced`, :mod:`repro.core.bandwidth`, and
:mod:`repro.core.generalized` used to run: after every edge removal they
re-scan for the minimum-bandwidth link, re-derive connected components by
BFS, and re-rank candidates per component.

They are kept verbatim as the *semantic oracle* for the incremental kernel
(:mod:`repro.core.kernel`): ``tests/core/test_kernel_differential.py``
asserts both paths return bit-identical selections (nodes, objective,
iteration count, extras) on random topologies, and
``benchmarks/bench_selection_kernel.py`` measures the speedup against
them.  Do not "optimize" this module — its value is being obviously
faithful to the paper, not fast.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .compute import top_compute_nodes
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    link_bandwidth_fraction,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .types import ExtrasKey, NoFeasibleSelection, Selection

__all__ = [
    "reference_select_balanced",
    "reference_select_max_bandwidth",
    "reference_select_with_bandwidth_floor",
]


def _component_score(
    graph: TopologyGraph,
    component: set[str],
    m: int,
    refs: References,
    eligible: Optional[Callable[[Node], bool]],
) -> Optional[tuple[float, float, float, list[str]]]:
    """Score one component: (minresource, mincpu, minbw, chosen-m-nodes).

    Returns None if the component lacks ``m`` eligible compute nodes.
    ``minbw`` follows the paper exactly: the minimum fractional bandwidth
    over *all* edges of the component (a conservative bound on any path the
    application might use inside it).
    """
    nodes = [graph.node(n) for n in component]
    candidates = [
        n for n in nodes
        if n.is_compute and (eligible is None or eligible(n))
    ]
    if len(candidates) < m:
        return None
    chosen = top_compute_nodes(candidates, m, refs)
    mincpu = min(node_compute_fraction(n, refs) for n in chosen)
    minbw = float("inf")
    seen: set[frozenset] = set()
    for name in component:
        for link in graph.incident_links(name):
            if link.key in seen:
                continue
            seen.add(link.key)
            minbw = min(minbw, link_bandwidth_fraction(link, refs))
    score = min(refs.scale_cpu(mincpu), refs.scale_bw(minbw))
    return score, mincpu, minbw, [n.name for n in chosen]


def reference_select_balanced(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    strict_greedy: bool = False,
) -> Selection:
    """Figure 3 by per-step recomputation (the paper's literal loop).

    See :func:`repro.core.select_balanced` for the contract; this naive
    path recomputes components and candidate rankings after every removal.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    work = graph.copy()

    # Step 1: best pure-compute choice, scored over the whole graph.
    all_nodes = list(work.nodes())
    candidates = [
        n for n in all_nodes
        if n.is_compute and (eligible is None or eligible(n))
    ]
    if len(candidates) < m:
        raise NoFeasibleSelection(
            f"need {m} eligible compute nodes, only {len(candidates)} exist"
        )
    chosen = top_compute_nodes(candidates, m, refs)
    best_nodes = [n.name for n in chosen]
    mincpu = min(node_compute_fraction(n, refs) for n in chosen)
    minbw = min(
        (link_bandwidth_fraction(l, refs) for l in work.links()),
        default=float("inf"),
    )
    best_score = min(refs.scale_cpu(mincpu), refs.scale_bw(minbw))
    best_cpu, best_bw = mincpu, minbw

    # Require the initial choice to be co-located in one component.  (The
    # paper assumes a connected input graph, where this is automatic.)
    if not graph.is_connected():
        feasible_initial = None
        for comp in work.connected_components():
            scored = _component_score(work, comp, m, refs, eligible)
            if scored is None:
                continue
            if feasible_initial is None or scored[0] > feasible_initial[0]:
                feasible_initial = scored
        if feasible_initial is None:
            raise NoFeasibleSelection(
                f"no connected component with {m} eligible compute nodes"
            )
        best_score, best_cpu, best_bw, best_nodes = feasible_initial

    iterations = 0
    # Steps 2-4: peel minimum-fractional-bandwidth edges.
    while True:
        worst = work.min_bandwidth_link(
            key=lambda l: link_bandwidth_fraction(l, refs)
        )
        if worst is None:
            break
        work.remove_link(worst.u, worst.v)
        iterations += 1

        newset = False
        feasible = False
        for comp in work.connected_components():
            scored = _component_score(work, comp, m, refs, eligible)
            if scored is None:
                continue
            feasible = True
            score, cpu, bw, names = scored
            if score > best_score:
                best_score, best_cpu, best_bw, best_nodes = score, cpu, bw, names
                newset = True
        if not feasible:
            break
        if strict_greedy and not newset:
            break

    return Selection(
        nodes=best_nodes,
        objective=best_score,
        min_cpu_fraction=min_cpu_fraction(graph, best_nodes, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, best_nodes, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, best_nodes),
        algorithm="balanced",
        iterations=iterations,
        extras={ExtrasKey.ALG_MINCPU: best_cpu, ExtrasKey.ALG_MINBW: best_bw},
    )


def _largest_compute_component(
    graph: TopologyGraph, eligible: Optional[Callable[[Node], bool]]
) -> tuple[set[str], int]:
    """The component with the most eligible compute nodes (and that count).

    Ties break toward the component containing the lexicographically
    smallest node name, keeping runs reproducible.
    """
    best: set[str] = set()
    best_count = -1
    best_key = ""
    for comp in graph.connected_components():
        count = 0
        for name in comp:
            node = graph.node(name)
            if node.is_compute and (eligible is None or eligible(node)):
                count += 1
        key = min(comp)
        if count > best_count or (count == best_count and key < best_key):
            best, best_count, best_key = comp, count, key
    return best, max(best_count, 0)


def reference_select_max_bandwidth(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Figure 2 by per-step recomputation (the paper's literal loop).

    See :func:`repro.core.select_max_bandwidth` for the contract.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    work = graph.copy()

    comp, count = _largest_compute_component(work, eligible)
    if count < m:
        raise NoFeasibleSelection(
            f"no connected component with {m} eligible compute nodes"
        )

    def pick(component: set[str]) -> list[str]:
        nodes = [work.node(n) for n in component]
        if eligible is not None:
            nodes = [n for n in nodes if not n.is_compute or eligible(n)]
        chosen = top_compute_nodes(nodes, m, refs)
        return [n.name for n in chosen]

    # Step 1: any m compute nodes of the (feasible) largest component.
    selected = pick(comp)
    iterations = 0

    # Steps 2-4: peel minimum-bandwidth edges while feasibility holds.
    while True:
        worst = work.min_bandwidth_link()
        if worst is None:
            break
        work.remove_link(worst.u, worst.v)
        iterations += 1
        comp, count = _largest_compute_component(work, eligible)
        if count < m:
            break
        selected = pick(comp)

    min_bw = min_pairwise_bandwidth(graph, selected)
    return Selection(
        nodes=selected,
        objective=min_bw,
        min_cpu_fraction=min_cpu_fraction(graph, selected, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, selected, refs),
        min_bw_bps=min_bw,
        algorithm="max-bandwidth",
        iterations=iterations,
    )


def reference_select_with_bandwidth_floor(
    graph: TopologyGraph,
    m: int,
    *,
    floor_bps: float,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Bandwidth-floor selection by copy-and-delete (the naive path).

    See :func:`repro.core.select_with_bandwidth_floor` for the contract.
    """
    if floor_bps < 0:
        raise ValueError(f"floor must be non-negative, got {floor_bps}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    work = graph.copy()
    for link in list(work.links()):
        if link.available < floor_bps:
            work.remove_link(link.u, link.v)

    best: Optional[tuple[float, list[str]]] = None
    for comp in work.connected_components():
        candidates = [
            work.node(n) for n in comp
            if work.node(n).is_compute
            and (eligible is None or eligible(work.node(n)))
        ]
        if len(candidates) < m:
            continue
        chosen = top_compute_nodes(candidates, m, refs)
        mincpu = min(node_compute_fraction(n, refs) for n in chosen)
        names = [n.name for n in chosen]
        if (
            best is None
            or mincpu > best[0]
            or (mincpu == best[0] and names < best[1])
        ):
            best = (mincpu, names)
    if best is None:
        raise NoFeasibleSelection(
            f"no component of {m} compute nodes meets a "
            f"{floor_bps / 1e6:.1f} Mbps pairwise floor"
        )
    mincpu, names = best
    return Selection(
        nodes=names,
        objective=mincpu,
        min_cpu_fraction=min_cpu_fraction(graph, names, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, names, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, names),
        algorithm="bandwidth-floor",
    )
