"""Generalized node selection (paper §3.3 and §3.4 extensions).

The balanced algorithm already absorbs heterogeneity and prioritization via
:class:`~repro.core.metrics.References`.  This module adds the remaining
generalizations:

- **Fixed requirements**: a hard bandwidth floor while maximizing CPU, or a
  hard CPU floor while maximizing bandwidth ("the algorithm structure is
  not modified and new constraints are added that define eligible node
  sets").
- **Cyclic topologies with static routing**: selection on the routed
  overlay, falling back to a pairwise greedy when the overlay itself is
  cyclic.
- **Group/custom execution patterns** (§3.4, future work in the paper): a
  first implementation for client–server style requirements.
- **Variable number of execution nodes** (§3.4): couples selection with a
  caller-supplied performance estimator.

All entry points share the unified signature convention of the
``select_*`` family: ``(graph, m, *, ...)`` with every option — ``refs``,
``eligible``, and procedure-specific knobs — keyword-only.  The peeling
variants run on the incremental kernel (:mod:`repro.core.kernel`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..topology.graph import Node, TopologyGraph
from ..topology.routing import RoutedView, RoutingTable
from .balanced import select_balanced
from .bandwidth import select_max_bandwidth
from .compute import select_max_compute, top_compute_nodes
from .kernel import kernel_select_with_bandwidth_floor
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .types import ExtrasKey, NoFeasibleSelection, Selection

__all__ = [
    "select_with_bandwidth_floor",
    "select_with_cpu_floor",
    "select_routed",
    "select_client_server",
    "select_variable_nodes",
]


def select_with_bandwidth_floor(
    graph: TopologyGraph,
    m: int,
    *,
    floor_bps: float,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Maximize CPU availability subject to a pairwise bandwidth floor.

    §3.3: "satisfy a fixed bandwidth requirement (e.g. a minimum of 50 Mbps
    between any selected nodes) and maximize processor availability under
    that constraint".  Every edge whose available bandwidth is below the
    floor is ignored — any surviving component guarantees the floor between
    all of its nodes — and the component whose best ``m`` nodes have the
    highest minimum CPU fraction wins.  Runs as a single union-find pass
    (:func:`repro.core.kernel.kernel_select_with_bandwidth_floor`).
    """
    return kernel_select_with_bandwidth_floor(
        graph, m, floor_bps=floor_bps, refs=refs, eligible=eligible
    )


def select_with_cpu_floor(
    graph: TopologyGraph,
    m: int,
    *,
    floor: float,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Maximize pairwise bandwidth subject to a per-node CPU-fraction floor.

    The dual of :func:`select_with_bandwidth_floor`: nodes below the floor
    are simply ineligible, and Figure 2 runs on the survivors.
    """
    if not 0 <= floor <= 1:
        raise ValueError(f"cpu floor must be in [0, 1], got {floor}")

    def ok(node: Node) -> bool:
        if eligible is not None and not eligible(node):
            return False
        return node_compute_fraction(node, refs) >= floor

    sel = select_max_bandwidth(graph, m, refs=refs, eligible=ok)
    sel.algorithm = "cpu-floor"
    return sel


def select_routed(
    graph: TopologyGraph,
    m: int,
    *,
    routing: Optional[RoutingTable] = None,
    objective: str = "balanced",
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Selection on a (possibly cyclic) statically routed topology (§3.3).

    Builds the overlay of links actually used by routed paths between
    candidate compute nodes.  If the overlay is acyclic — the common case
    on LANs, where static routes form trees — the standard algorithms run
    on it unchanged.  Otherwise a pairwise greedy operates directly on the
    routed bottleneck-bandwidth matrix: starting from the best pair, grow
    the set by the node maximizing the resulting objective.
    """
    if objective not in ("balanced", "bandwidth", "compute"):
        raise ValueError(f"unknown objective {objective!r}")
    routing = routing or RoutingTable(graph)
    candidates = [
        n.name for n in graph.compute_nodes()
        if eligible is None or eligible(n)
    ]
    if len(candidates) < m:
        raise NoFeasibleSelection(
            f"need {m} eligible compute nodes, only {len(candidates)} exist"
        )
    view = RoutedView(graph, routing, compute_nodes=candidates)
    overlay = view.overlay()

    if overlay.is_acyclic():
        if objective == "balanced":
            sel = select_balanced(overlay, m, refs=refs, eligible=eligible)
        elif objective == "bandwidth":
            sel = select_max_bandwidth(overlay, m, refs=refs, eligible=eligible)
        else:
            sel = select_max_compute(overlay, m, refs=refs, eligible=eligible)
        sel.algorithm = f"routed-{sel.algorithm}"
        return sel

    # Cyclic overlay: pairwise greedy on the routed bandwidth matrix.
    matrix = view.pair_bandwidth_matrix()

    def pair_bw(a: str, b: str) -> float:
        return min(matrix[(a, b)], matrix[(b, a)])

    def cpu_frac(name: str) -> float:
        return node_compute_fraction(graph.node(name), refs)

    def set_score(names: Sequence[str]) -> float:
        bw = min(
            (pair_bw(a, b) for i, a in enumerate(names) for b in names[i + 1:]),
            default=float("inf"),
        )
        bw_frac = bw / (refs.link_bandwidth or _max_capacity(graph))
        cpu = min(cpu_frac(n) for n in names)
        if objective == "bandwidth":
            return bw
        if objective == "compute":
            return cpu
        return min(refs.scale_cpu(cpu), refs.scale_bw(bw_frac))

    def grow(seed: list[str]) -> list[str]:
        out = list(seed)
        while len(out) < m:
            remaining = [c for c in candidates if c not in out]
            nxt = max(remaining, key=lambda c: (set_score(out + [c]), c))
            out.append(nxt)
        return sorted(out)

    # A single best-pair seed can trap the greedy inside a well-connected
    # but poorly-expandable pocket (e.g. a congested pod whose two hosts
    # talk fast to each other).  Grow from several of the best-scoring
    # seed pairs and keep the best completed set.
    if m == 1:
        chosen = [max(candidates, key=lambda n: (cpu_frac(n), n))]
    else:
        pairs = sorted(
            (
                (set_score([a, b]), (a, b))
                for i, a in enumerate(candidates)
                for b in candidates[i + 1:]
            ),
            key=lambda t: (-t[0], t[1]),
        )
        max_seeds = min(len(pairs), max(8, len(candidates)))
        grown = [grow(list(pair)) for _score, pair in pairs[:max_seeds]]
        chosen = max(grown, key=lambda names: (set_score(names), names))

    bw = min(
        (pair_bw(a, b) for i, a in enumerate(chosen) for b in chosen[i + 1:]),
        default=float("inf"),
    )
    return Selection(
        nodes=chosen,
        objective=set_score(chosen),
        min_cpu_fraction=min_cpu_fraction(graph, chosen, refs),
        min_bw_fraction=bw / (refs.link_bandwidth or _max_capacity(graph)),
        min_bw_bps=bw,
        algorithm=f"routed-pairwise-{objective}",
    )


def _max_capacity(graph: TopologyGraph) -> float:
    return max((l.maxbw for l in graph.links()), default=1.0)


def select_client_server(
    graph: TopologyGraph,
    *,
    num_clients: int,
    num_servers: int = 1,
    server_eligible: Optional[Callable[[Node], bool]] = None,
    client_eligible: Optional[Callable[[Node], bool]] = None,
    refs: References = DEFAULT_REFERENCES,
) -> Selection:
    """Client–server placement (§3.4 "custom execution patterns").

    Servers get the nodes with the maximum available computation capacity
    (among server-eligible nodes); clients are then chosen to maximize the
    minimum available bandwidth *from the servers to the clients* — only
    server→client communication is scored, per the paper's example.
    """
    if num_servers < 1 or num_clients < 1:
        raise ValueError("need at least one server and one client")
    server_nodes = [
        n for n in graph.compute_nodes()
        if server_eligible is None or server_eligible(n)
    ]
    servers = [
        n.name for n in top_compute_nodes(server_nodes, num_servers, refs)
    ]

    def is_client_candidate(node: Node) -> bool:
        if node.name in servers:
            return False
        return client_eligible is None or client_eligible(node)

    candidates = [
        n.name for n in graph.compute_nodes() if is_client_candidate(n)
    ]
    if len(candidates) < num_clients:
        raise NoFeasibleSelection(
            f"need {num_clients} client nodes, only {len(candidates)} eligible"
        )

    def client_bw(name: str) -> float:
        # Only server->client direction matters.
        return min(
            graph.path_available_bandwidth(s, name) for s in servers
        )

    ranked = sorted(candidates, key=lambda n: (-client_bw(n), n))
    clients = sorted(ranked[:num_clients])
    worst_bw = min(client_bw(c) for c in clients)
    if worst_bw == 0.0:
        raise NoFeasibleSelection("some required client is unreachable from a server")
    names = servers + clients
    return Selection(
        nodes=names,
        objective=worst_bw,
        min_cpu_fraction=min_cpu_fraction(graph, names, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, names, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, names),
        algorithm="client-server",
        extras={ExtrasKey.SERVERS: servers, ExtrasKey.CLIENTS: clients},
    )


def select_variable_nodes(
    graph: TopologyGraph,
    m_range: Sequence[int],
    *,
    speedup: Callable[[int], float],
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Choose the number *and* set of nodes (§3.4 "variable number").

    For each candidate ``m``, run the balanced selection and estimate
    delivered performance as ``speedup(m) * minresource(m)`` — the paper
    notes that its decision procedures must be coupled with a performance
    estimation method; ``speedup`` is that method (e.g. an Amdahl model).
    The ``m`` with the best estimate wins.  Each per-``m`` probe runs on
    the incremental kernel, so sweeping a wide ``m_range`` stays cheap.
    """
    if not m_range:
        raise ValueError("m_range must be non-empty")
    best: Optional[tuple[float, Selection]] = None
    for m in m_range:
        try:
            sel = select_balanced(graph, m, refs=refs, eligible=eligible)
        except NoFeasibleSelection:
            continue
        rate = speedup(m) * sel.objective
        if best is None or rate > best[0]:
            best = (rate, sel)
    if best is None:
        raise NoFeasibleSelection(
            f"no feasible selection for any m in {list(m_range)}"
        )
    rate, sel = best
    sel.algorithm = "variable-m"
    sel.extras[ExtrasKey.ESTIMATED_RATE] = rate
    return sel
