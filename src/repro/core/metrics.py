"""Resource metrics and selection objectives (paper §3.1–§3.3).

The selection algorithms reason in *fractions of peak capacity*:

- a compute node's fraction is ``cpu = 1/(1+load)`` scaled by its relative
  capacity against a **reference node** (heterogeneous systems, §3.3);
- a link's fraction is available bandwidth against a **reference link**
  (heterogeneous links, §3.3); in the homogeneous case this reduces to the
  paper's ``bwfactor = bw/maxbw``.

This module also provides the exact objective evaluators used to score a
chosen node set after the fact — the quantities the algorithms maximize:
the minimum CPU fraction over the set, and the minimum available bandwidth
between any pair of selected nodes (bottleneck path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..topology.graph import Node, TopologyGraph

__all__ = [
    "References",
    "node_compute_fraction",
    "link_bandwidth_fraction",
    "min_cpu_fraction",
    "min_pairwise_bandwidth",
    "min_pairwise_bandwidth_fraction",
    "minresource",
]


@dataclass(frozen=True)
class References:
    """Reference capacities for heterogeneous balancing (§3.3).

    ``node_capacity`` is the ops/s rate fractions are measured against;
    ``link_bandwidth`` (bps) plays the same role for links.  ``None`` means
    "measure each element against its own peak", which is exactly the
    paper's homogeneous formulation (``bwfactor = bw/maxbw``).

    ``compute_priority``/``comm_priority`` implement the §3.3 prioritization:
    with ``compute_priority=2``, 50% CPU availability is treated as
    equivalent to 25% availability of communication paths, so the balanced
    algorithm works harder to preserve CPU.
    """

    node_capacity: Optional[float] = None
    link_bandwidth: Optional[float] = None
    compute_priority: float = 1.0
    comm_priority: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_priority <= 0 or self.comm_priority <= 0:
            raise ValueError("priorities must be positive")
        if self.node_capacity is not None and self.node_capacity <= 0:
            raise ValueError("reference node capacity must be positive")
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ValueError("reference link bandwidth must be positive")

    def scale_cpu(self, fraction: float) -> float:
        """CPU fraction on the common comparison scale."""
        return fraction / self.compute_priority

    def scale_bw(self, fraction: float) -> float:
        """Bandwidth fraction on the common comparison scale."""
        return fraction / self.comm_priority


#: The paper's plain homogeneous setting.
DEFAULT_REFERENCES = References()


def node_compute_fraction(node: Node, refs: References = DEFAULT_REFERENCES) -> float:
    """Fraction of reference compute capacity available on ``node``.

    Homogeneous (no reference): ``1/(1+load)``.  Heterogeneous: the node's
    available ops/s divided by the reference rate, so a twice-as-fast node
    at 50% availability still scores 1.0 against a baseline reference.
    """
    base = node.cpu
    if refs.node_capacity is None:
        return base
    return base * node.compute_capacity / refs.node_capacity


def link_bandwidth_fraction(link, refs: References = DEFAULT_REFERENCES) -> float:
    """Fraction of reference bandwidth available on ``link``.

    Homogeneous: the paper's ``bwfactor = bw/maxbw``.  Heterogeneous: the
    available bps divided by the reference link's capacity (§3.3's
    "50% available bandwidth is 50 Mbps or 77.5 Mbps" example).
    """
    if refs.link_bandwidth is None:
        return link.bwfactor
    return link.available / refs.link_bandwidth


def min_cpu_fraction(
    graph: TopologyGraph,
    nodes: Iterable[str],
    refs: References = DEFAULT_REFERENCES,
) -> float:
    """Minimum compute fraction over a node set (``inf`` for empty set).

    This is the set's *computation capacity*: §3.2, "determined by the most
    loaded node".
    """
    return min(
        (node_compute_fraction(graph.node(n), refs) for n in nodes),
        default=float("inf"),
    )


def min_pairwise_bandwidth(graph: TopologyGraph, nodes: Sequence[str]) -> float:
    """Minimum available bandwidth (bps) between any pair in ``nodes``.

    Evaluated exactly via bottleneck paths.  Returns ``inf`` for fewer than
    two nodes and ``0`` if any pair is disconnected.  This is the
    communication objective Figure 2 maximizes.
    """
    names = list(nodes)
    best = float("inf")
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            bw = graph.path_available_bandwidth(a, b)
            rev = graph.path_available_bandwidth(b, a)
            best = min(best, bw, rev)
            if best == 0.0:
                return 0.0
    return best


def min_pairwise_bandwidth_fraction(
    graph: TopologyGraph,
    nodes: Sequence[str],
    refs: References = DEFAULT_REFERENCES,
) -> float:
    """Minimum *fractional* bandwidth over pairs of ``nodes``.

    With a reference link, the absolute bottleneck is divided by the
    reference capacity.  Without one, each path hop contributes its own
    ``bwfactor`` and the minimum fraction along the bottleneck hop is used
    (homogeneous capacities make the two formulations identical).
    """
    names = list(nodes)
    best = float("inf")
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for src, dst in ((a, b), (b, a)):
                path = graph.path(src, dst)
                if path is None:
                    return 0.0
                for x, y in zip(path, path[1:]):
                    link = graph.link(x, y)
                    if refs.link_bandwidth is None:
                        frac = link.available_towards(y) / link.maxbw
                    else:
                        frac = link.available_towards(y) / refs.link_bandwidth
                    best = min(best, frac)
    return best


def minresource(
    graph: TopologyGraph,
    nodes: Sequence[str],
    refs: References = DEFAULT_REFERENCES,
) -> float:
    """The balanced objective of Figure 3, evaluated exactly on a node set.

    ``min(scaled min CPU fraction, scaled min pairwise bandwidth fraction)``
    — the largest fraction of peak compute *and* communication capacity the
    set can deliver simultaneously.
    """
    cpu = refs.scale_cpu(min_cpu_fraction(graph, nodes, refs))
    bw = refs.scale_bw(min_pairwise_bandwidth_fraction(graph, nodes, refs))
    return min(cpu, bw)
