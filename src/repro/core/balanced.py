"""Balanced computation + communication selection — the Figure 3 algorithm.

Goal (§3.2): select ``m`` nodes maximizing

    ``minresource = min(mincpu, minbw)``

where ``mincpu`` is the minimum fractional CPU capacity over the chosen
nodes and ``minbw`` the minimum fractional bandwidth over the edges of
their component — i.e. the largest fraction of peak compute and
communication capacity deliverable *simultaneously*.

The algorithm starts from the best pure-compute choice and then greedily
removes the minimum-fractional-bandwidth edge: removal can only raise the
component's ``minbw`` but may exile high-CPU nodes and thus lower
``mincpu``.  After each removal, every surviving component with ``m``
compute nodes is scored and the best seen set is kept; the loop stops when
a removal fails to improve ``minresource`` (greedy) or no feasible
component remains.

Generalizations of §3.3 are folded in through :class:`References`:
heterogeneous node/link capacities (reference scaling) and the
computation/communication priority factor.  An optional ``strict_greedy``
flag reproduces the paper's literal stopping rule; the default keeps
peeling through plateaus (removals that neither help nor hurt), which
never returns a worse set and handles ties between equal-bandwidth edges
more robustly.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .compute import top_compute_nodes
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    link_bandwidth_fraction,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    node_compute_fraction,
)
from .types import NoFeasibleSelection, Selection

__all__ = ["select_balanced"]


def _component_score(
    graph: TopologyGraph,
    component: set[str],
    m: int,
    refs: References,
    eligible: Optional[Callable[[Node], bool]],
) -> Optional[tuple[float, float, float, list[str]]]:
    """Score one component: (minresource, mincpu, minbw, chosen-m-nodes).

    Returns None if the component lacks ``m`` eligible compute nodes.
    ``minbw`` follows the paper exactly: the minimum fractional bandwidth
    over *all* edges of the component (a conservative bound on any path the
    application might use inside it).
    """
    nodes = [graph.node(n) for n in component]
    candidates = [
        n for n in nodes
        if n.is_compute and (eligible is None or eligible(n))
    ]
    if len(candidates) < m:
        return None
    chosen = top_compute_nodes(candidates, m, refs)
    mincpu = min(node_compute_fraction(n, refs) for n in chosen)
    minbw = float("inf")
    seen: set[frozenset] = set()
    for name in component:
        for link in graph.incident_links(name):
            if link.key in seen:
                continue
            seen.add(link.key)
            minbw = min(minbw, link_bandwidth_fraction(link, refs))
    score = min(refs.scale_cpu(mincpu), refs.scale_bw(minbw))
    return score, mincpu, minbw, [n.name for n in chosen]


def select_balanced(
    graph: TopologyGraph,
    m: int,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    strict_greedy: bool = False,
) -> Selection:
    """Select ``m`` nodes maximizing ``min(mincpu, minbw)`` (Figure 3).

    Parameters
    ----------
    graph:
        Topology snapshot; not mutated (the algorithm peels a copy).
    m:
        Number of compute nodes required.
    refs:
        Reference capacities and compute/comm priority weighting (§3.3).
    eligible:
        Optional predicate restricting candidate compute nodes.
    strict_greedy:
        If True, stop at the first removal that does not *strictly* improve
        ``minresource`` (the paper's literal Figure 3 rule).  The default
        (False) continues while feasible components remain, still keeping
        the best set seen — never worse, and immune to plateaus caused by
        equal-bandwidth edges.

    Returns
    -------
    Selection
        ``objective`` is the achieved (scaled) minresource as computed by
        the algorithm's conservative component-wide bound; the exact
        path-based fractions are also reported.

    Raises
    ------
    NoFeasibleSelection
        If fewer than ``m`` eligible compute nodes exist in one component.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    work = graph.copy()

    # Step 1: best pure-compute choice, scored over the whole graph.
    all_nodes = list(work.nodes())
    candidates = [
        n for n in all_nodes
        if n.is_compute and (eligible is None or eligible(n))
    ]
    if len(candidates) < m:
        raise NoFeasibleSelection(
            f"need {m} eligible compute nodes, only {len(candidates)} exist"
        )
    chosen = top_compute_nodes(candidates, m, refs)
    best_nodes = [n.name for n in chosen]
    mincpu = min(node_compute_fraction(n, refs) for n in chosen)
    minbw = min(
        (link_bandwidth_fraction(l, refs) for l in work.links()),
        default=float("inf"),
    )
    best_score = min(refs.scale_cpu(mincpu), refs.scale_bw(minbw))
    best_cpu, best_bw = mincpu, minbw

    # Require the initial choice to be co-located in one component.  (The
    # paper assumes a connected input graph, where this is automatic.)
    if not graph.is_connected():
        feasible_initial = None
        for comp in work.connected_components():
            scored = _component_score(work, comp, m, refs, eligible)
            if scored is None:
                continue
            if feasible_initial is None or scored[0] > feasible_initial[0]:
                feasible_initial = scored
        if feasible_initial is None:
            raise NoFeasibleSelection(
                f"no connected component with {m} eligible compute nodes"
            )
        best_score, best_cpu, best_bw, best_nodes = feasible_initial

    iterations = 0
    # Steps 2-4: peel minimum-fractional-bandwidth edges.
    while True:
        worst = work.min_bandwidth_link(
            key=lambda l: link_bandwidth_fraction(l, refs)
        )
        if worst is None:
            break
        work.remove_link(worst.u, worst.v)
        iterations += 1

        newset = False
        feasible = False
        for comp in work.connected_components():
            scored = _component_score(work, comp, m, refs, eligible)
            if scored is None:
                continue
            feasible = True
            score, cpu, bw, names = scored
            if score > best_score:
                best_score, best_cpu, best_bw, best_nodes = score, cpu, bw, names
                newset = True
        if not feasible:
            break
        if strict_greedy and not newset:
            break

    return Selection(
        nodes=best_nodes,
        objective=best_score,
        min_cpu_fraction=min_cpu_fraction(graph, best_nodes, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, best_nodes, refs),
        min_bw_bps=min_pairwise_bandwidth(graph, best_nodes),
        algorithm="balanced",
        iterations=iterations,
        extras={"alg_mincpu": best_cpu, "alg_minbw": best_bw},
    )
