"""Balanced computation + communication selection — the Figure 3 algorithm.

Goal (§3.2): select ``m`` nodes maximizing

    ``minresource = min(mincpu, minbw)``

where ``mincpu`` is the minimum fractional CPU capacity over the chosen
nodes and ``minbw`` the minimum fractional bandwidth over the edges of
their component — i.e. the largest fraction of peak compute and
communication capacity deliverable *simultaneously*.

The algorithm starts from the best pure-compute choice and then greedily
removes the minimum-fractional-bandwidth edge: removal can only raise the
component's ``minbw`` but may exile high-CPU nodes and thus lower
``mincpu``.  After each removal, every surviving component with ``m``
compute nodes is scored and the best seen set is kept; the loop stops when
a removal fails to improve ``minresource`` (greedy) or no feasible
component remains.

Generalizations of §3.3 are folded in through :class:`References`:
heterogeneous node/link capacities (reference scaling) and the
computation/communication priority factor.  An optional ``strict_greedy``
flag reproduces the paper's literal stopping rule; the default keeps
peeling through plateaus (removals that neither help nor hurt), which
never returns a worse set and handles ties between equal-bandwidth edges
more robustly.

Execution runs on the incremental kernel (:mod:`repro.core.kernel`):
edges are pre-sorted into peel order once and components are maintained
by a reverse union-find, which is orders of magnitude faster than the
per-step recomputation of the naive loop while provably returning the
same selection (see :mod:`repro.core.reference` and the differential
tests).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .kernel import kernel_select_balanced
from .metrics import DEFAULT_REFERENCES, References
from .types import Selection

__all__ = ["select_balanced"]


def select_balanced(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
    strict_greedy: bool = False,
) -> Selection:
    """Select ``m`` nodes maximizing ``min(mincpu, minbw)`` (Figure 3).

    Parameters
    ----------
    graph:
        Topology snapshot; not mutated.
    m:
        Number of compute nodes required.
    refs:
        Reference capacities and compute/comm priority weighting (§3.3).
    eligible:
        Optional predicate restricting candidate compute nodes.
    strict_greedy:
        If True, stop at the first removal that does not *strictly* improve
        ``minresource`` (the paper's literal Figure 3 rule).  The default
        (False) continues while feasible components remain, still keeping
        the best set seen — never worse, and immune to plateaus caused by
        equal-bandwidth edges.

    Returns
    -------
    Selection
        ``objective`` is the achieved (scaled) minresource as computed by
        the algorithm's conservative component-wide bound; the exact
        path-based fractions are also reported.

    Raises
    ------
    NoFeasibleSelection
        If fewer than ``m`` eligible compute nodes exist in one component.
    """
    return kernel_select_balanced(
        graph, m, refs=refs, eligible=eligible, strict_greedy=strict_greedy
    )
