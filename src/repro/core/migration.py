"""Dynamic migration of long-running jobs (paper §3.3, "dynamic migration").

The selection procedures apply directly to migration, with one crucial
adjustment the paper calls out: *the load and traffic caused by the
application itself must be captured separately* — the application's own
footprint on its current nodes and links is not competing load and must be
discounted before re-evaluating placements.

:class:`MigrationAdvisor` implements this: given the application's own
footprint (extra load average per occupied node, bandwidth per used link)
it produces a *self-corrected* snapshot, re-runs selection, and recommends
a move only when the improvement clears a hysteresis threshold (moving has
real cost — checkpointing, restart — so marginal wins should not trigger
migrations that thrash).

Failures override hysteresis: when a node of the current placement has
crashed or become unmonitorable, staying put is not an option — the
advisor forces migration (``reason == "failure"``) onto a fresh selection
that excludes the failed nodes.  Link degradation without node loss still
goes through the hysteresis gate, since the application can limp along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..topology.graph import TopologyGraph
from .metrics import DEFAULT_REFERENCES, References, minresource
from .selector import NodeSelector, unhealthy_nodes
from .spec import ApplicationSpec
from .types import Selection

__all__ = ["SelfFootprint", "MigrationDecision", "MigrationAdvisor"]


@dataclass
class SelfFootprint:
    """The running application's own resource usage.

    ``node_load`` maps node name → load-average contribution of the app's
    process on that node (1.0 for a fully busy single process).
    ``link_traffic_bps`` maps an (undirected) node-name pair frozenset →
    the app's own average traffic crossing that link.
    """

    node_load: dict[str, float] = field(default_factory=dict)
    link_traffic_bps: dict[frozenset, float] = field(default_factory=dict)

    @classmethod
    def uniform(
        cls,
        nodes: Sequence[str],
        load_per_node: float = 1.0,
        links: Optional[Sequence[frozenset]] = None,
        traffic_per_link_bps: float = 0.0,
    ) -> "SelfFootprint":
        """A simple footprint: same load on every node, same traffic per link."""
        return cls(
            node_load={n: load_per_node for n in nodes},
            link_traffic_bps={
                k: traffic_per_link_bps for k in (links or [])
            },
        )


@dataclass
class MigrationDecision:
    """Outcome of one migration evaluation.

    ``reason`` is ``"failure"`` when migration was forced by failed nodes
    (listed in ``failed_nodes``), ``"improvement"`` when the candidate
    cleared hysteresis, and ``"hold"`` otherwise.
    """

    migrate: bool
    current_nodes: list[str]
    candidate: Selection
    current_score: float
    candidate_score: float
    reason: str = "hold"
    failed_nodes: list[str] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative improvement of the candidate over staying put."""
        if self.current_score <= 0:
            return float("inf") if self.candidate_score > 0 else 0.0
        return self.candidate_score / self.current_score - 1.0


class MigrationAdvisor:
    """Decides whether a running application should move.

    Parameters
    ----------
    selector:
        The node selector to re-run (carries the topology provider).
    hysteresis:
        Minimum relative improvement required to recommend migration
        (default 20%): ``candidate > (1 + hysteresis) * current``.
    """

    def __init__(self, selector: NodeSelector, hysteresis: float = 0.2) -> None:
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.selector = selector
        self.hysteresis = hysteresis

    def corrected_snapshot(
        self, footprint: SelfFootprint, graph: Optional[TopologyGraph] = None
    ) -> TopologyGraph:
        """Topology snapshot with the app's own load/traffic removed."""
        g = (graph if graph is not None else self.selector.snapshot()).copy()
        for name, load in footprint.node_load.items():
            if g.has_node(name):
                node = g.node(name)
                node.load_average = max(0.0, node.load_average - load)
        for key, bps in footprint.link_traffic_bps.items():
            names = tuple(key)
            if len(names) == 2 and g.has_link(*names):
                link = g.link(*names)
                link.set_available(
                    min(link.maxbw, link.available_fwd + bps), direction=link.v
                )
                link.set_available(
                    min(link.maxbw, link.available_rev + bps), direction=link.u
                )
        return g

    def evaluate(
        self,
        spec: ApplicationSpec,
        current_nodes: Sequence[str],
        footprint: SelfFootprint,
        refs: References = DEFAULT_REFERENCES,
        graph: Optional[TopologyGraph] = None,
    ) -> MigrationDecision:
        """Compare staying on ``current_nodes`` against re-selection.

        Both placements are scored with the exact balanced objective
        (``minresource``) on the self-corrected snapshot, so the comparison
        is apples-to-apples and the app's own footprint does not penalize
        its current home.

        ``graph`` overrides the selector's own snapshot — the selection
        service passes its *residual* view with the application's claims
        already credited back, so the evaluation sees exactly the
        capacity a re-admission would run against.

        If any current node has failed (crashed / unmonitorable /
        partitioned away per the snapshot), the comparison is moot: a
        placement with a dead member scores 0 and migration is forced,
        bypassing hysteresis.
        """
        g = self.corrected_snapshot(footprint, graph=graph)
        failed = unhealthy_nodes(g, list(current_nodes))
        candidate = self.selector.select(spec, graph=g)
        candidate_score = minresource(g, candidate.nodes, refs)

        if failed:
            return MigrationDecision(
                migrate=True,
                current_nodes=list(current_nodes),
                candidate=candidate,
                current_score=0.0,
                candidate_score=candidate_score,
                reason="failure",
                failed_nodes=failed,
            )

        current_score = minresource(g, list(current_nodes), refs)
        same = set(candidate.nodes) == set(current_nodes)
        migrate = (
            not same
            and candidate_score > current_score * (1.0 + self.hysteresis)
        )
        return MigrationDecision(
            migrate=migrate,
            current_nodes=list(current_nodes),
            candidate=candidate,
            current_score=current_score,
            candidate_score=candidate_score,
            reason="improvement" if migrate else "hold",
        )
