"""Node selection — the paper's primary contribution (§3).

Fundamental algorithms (§3.2):

- :func:`select_max_compute` — maximize available computation capacity.
- :func:`select_max_bandwidth` — Figure 2: maximize the minimum available
  bandwidth between any pair of selected nodes.
- :func:`select_balanced` — Figure 3: maximize the minimum of fractional
  compute and communication capacity.

Generalizations (§3.3–§3.4): floors, routed/cyclic topologies, group
placement, variable node counts, and dynamic migration.  Baselines used by
the evaluation: random, static, exhaustive-optimal.

The :class:`NodeSelector` facade dispatches an :class:`ApplicationSpec`
against a topology provider (typically the Remos API).
"""

from .balanced import select_balanced
from .bandwidth import select_max_bandwidth
from .baselines import select_exhaustive, select_random, select_static
from .compute import select_max_compute, top_compute_nodes
from .estimate import PhaseWorkload, estimate_runtime, speedup_model
from .kernel import (
    kernel_select_balanced,
    kernel_select_max_bandwidth,
    kernel_select_with_bandwidth_floor,
    peel_order,
)
from .latency import max_pairwise_latency, select_with_latency_bound
from .reference import (
    reference_select_balanced,
    reference_select_max_bandwidth,
    reference_select_with_bandwidth_floor,
)
from .requirements import NodeRequirements
from .generalized import (
    select_client_server,
    select_routed,
    select_variable_nodes,
    select_with_bandwidth_floor,
    select_with_cpu_floor,
)
from .metrics import (
    References,
    link_bandwidth_fraction,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
    minresource,
    node_compute_fraction,
)
from .migration import MigrationAdvisor, MigrationDecision, SelfFootprint
from .pattern_aware import (
    effective_pattern_bandwidth,
    pattern_flows,
    select_pattern_aware,
)
from .selector import (
    NodeSelector,
    Procedure,
    TopologyProvider,
    default_procedures,
    register_procedure,
    select,
    unhealthy_nodes,
)
from .spec import ApplicationSpec, CommPattern, GroupSpec, Objective
from .types import (
    EXTRAS_SCHEMA,
    ExtrasKey,
    NoFeasibleSelection,
    Selection,
    node_is_selectable,
)

__all__ = [
    "ApplicationSpec",
    "CommPattern",
    "EXTRAS_SCHEMA",
    "ExtrasKey",
    "GroupSpec",
    "MigrationAdvisor",
    "MigrationDecision",
    "NoFeasibleSelection",
    "NodeRequirements",
    "NodeSelector",
    "Objective",
    "PhaseWorkload",
    "Procedure",
    "References",
    "Selection",
    "SelfFootprint",
    "TopologyProvider",
    "default_procedures",
    "kernel_select_balanced",
    "kernel_select_max_bandwidth",
    "kernel_select_with_bandwidth_floor",
    "link_bandwidth_fraction",
    "min_cpu_fraction",
    "min_pairwise_bandwidth",
    "min_pairwise_bandwidth_fraction",
    "max_pairwise_latency",
    "minresource",
    "node_compute_fraction",
    "node_is_selectable",
    "peel_order",
    "reference_select_balanced",
    "reference_select_max_bandwidth",
    "reference_select_with_bandwidth_floor",
    "register_procedure",
    "unhealthy_nodes",
    "effective_pattern_bandwidth",
    "estimate_runtime",
    "pattern_flows",
    "select",
    "select_balanced",
    "select_client_server",
    "select_exhaustive",
    "select_max_bandwidth",
    "select_max_compute",
    "select_pattern_aware",
    "select_random",
    "select_routed",
    "select_static",
    "speedup_model",
    "select_variable_nodes",
    "select_with_bandwidth_floor",
    "select_with_latency_bound",
    "select_with_cpu_floor",
    "top_compute_nodes",
]
