"""The application specification interface (paper §2.1).

The uniform external interface through which an (unmodified) application —
or its launcher — tells the selection framework what it needs: how many
nodes, the dominant communication pattern, the relative priority of
computation and communication, node groups with their own requirements,
and hard placement constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..topology.graph import Node

__all__ = ["CommPattern", "GroupSpec", "ApplicationSpec", "Objective"]


class CommPattern:
    """Dominant communication patterns an application can declare."""

    ALL_TO_ALL = "all-to-all"
    MASTER_SLAVE = "master-slave"
    RING = "ring"
    PIPELINE = "pipeline"
    NONE = "none"

    ALL = (ALL_TO_ALL, MASTER_SLAVE, RING, PIPELINE, NONE)


class Objective:
    """What the selector should optimize for this application."""

    COMPUTE = "compute"
    BANDWIDTH = "bandwidth"
    BALANCED = "balanced"

    ALL = (COMPUTE, BANDWIDTH, BALANCED)


@dataclass
class GroupSpec:
    """A named node group within an application (§2.1).

    e.g. a server group that must run on Alpha machines::

        GroupSpec(name="server", size=1, attr_constraints={"arch": "alpha"})
    """

    name: str
    size: int
    #: Node attributes that must match exactly (e.g. architecture).
    attr_constraints: dict[str, Any] = field(default_factory=dict)
    #: Specific machines this group must run on (subset chosen from these).
    allowed_nodes: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"group {self.name!r}: size must be >= 1")

    def admits(self, node: Node) -> bool:
        """True if ``node`` satisfies this group's placement constraints."""
        if self.allowed_nodes is not None and node.name not in self.allowed_nodes:
            return False
        return all(
            node.attrs.get(key) == want
            for key, want in self.attr_constraints.items()
        )


@dataclass
class ApplicationSpec:
    """Everything the framework needs to know about an application.

    Attributes
    ----------
    num_nodes:
        Nodes required for execution (ignored when ``groups`` are given —
        then the group sizes add up to the requirement).
    pattern:
        The main communication pattern (:class:`CommPattern`).
    objective:
        Which criterion to optimize (:class:`Objective`).  Defaults to
        balanced, the paper's headline algorithm.
    compute_priority / comm_priority:
        Relative weighting (§3.3): ``compute_priority=2`` makes 50% CPU
        equivalent to 25% communication.
    min_bandwidth_bps / min_cpu_fraction:
        Hard floors (§3.3 "fixed computation and communication
        requirements"); at most one may be set.
    max_latency_s:
        Bound on the pairwise path latency between selected nodes (§3.4
        "latency and other considerations" — implemented here).
    account_simultaneous_streams:
        If True, selection scores candidate sets by the *effective*
        bandwidth of the declared pattern's concurrent flows instead of
        independent pairwise availability (§3.4 "simultaneous traffic
        streams" — implemented here).  Requires a concrete ``pattern``.
    groups:
        Node groups with their own requirements (client/server, §2.1).
    eligible:
        Global placement predicate applied to every candidate node.
    num_nodes_range:
        If set, the selector may choose the node count from this range
        (§3.4 "variable number of execution nodes"), using
        ``speedup_model``.
    speedup_model:
        Parallel speedup estimate ``m -> speedup`` for variable-m search.
    """

    num_nodes: int = 1
    pattern: str = CommPattern.ALL_TO_ALL
    objective: str = Objective.BALANCED
    compute_priority: float = 1.0
    comm_priority: float = 1.0
    min_bandwidth_bps: Optional[float] = None
    min_cpu_fraction: Optional[float] = None
    max_latency_s: Optional[float] = None
    account_simultaneous_streams: bool = False
    groups: list[GroupSpec] = field(default_factory=list)
    eligible: Optional[Callable[[Node], bool]] = None
    num_nodes_range: Optional[Sequence[int]] = None
    speedup_model: Optional[Callable[[int], float]] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.pattern not in CommPattern.ALL:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.objective not in Objective.ALL:
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.compute_priority <= 0 or self.comm_priority <= 0:
            raise ValueError("priorities must be positive")
        if self.min_bandwidth_bps is not None and self.min_cpu_fraction is not None:
            raise ValueError(
                "set at most one of min_bandwidth_bps / min_cpu_fraction"
            )
        if self.min_cpu_fraction is not None and not 0 <= self.min_cpu_fraction <= 1:
            raise ValueError("min_cpu_fraction must be in [0, 1]")
        if self.max_latency_s is not None and self.max_latency_s < 0:
            raise ValueError("max_latency_s cannot be negative")
        if self.account_simultaneous_streams and self.pattern == CommPattern.NONE:
            raise ValueError(
                "account_simultaneous_streams needs a concrete pattern"
            )
        if self.num_nodes_range is not None and self.speedup_model is None:
            raise ValueError("num_nodes_range requires a speedup_model")
        names = [g.name for g in self.groups]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate group names in {names}")

    @property
    def total_nodes(self) -> int:
        """Total node requirement (sum of groups, or ``num_nodes``)."""
        if self.groups:
            return sum(g.size for g in self.groups)
        return self.num_nodes
