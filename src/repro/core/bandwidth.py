"""Maximize-communication node selection — the Figure 2 algorithm.

Criterion (§3.2): *maximize the minimum available bandwidth between any
pair of selected nodes* — minimize the bottleneck communication path.

The algorithm exploits the key acyclic-graph fact the paper states: the
least bandwidth between any pair of connected nodes cannot be less than the
lowest edge bandwidth in (their component of) the graph.  So: repeatedly
remove the globally minimum-available-bandwidth edge; as long as some
connected component still contains ``m`` compute nodes, those nodes only
communicate over edges *better* than everything removed so far.  When no
such component survives, the last surviving candidate set is optimal.

The paper's Figure 2 states the loop guard as ``l > m``; continuing while
``l >= m`` is the intended reading (the text says "testing if enough
connected nodes exist" and "eventually this size will become less than
m"), and strictly dominates: with exactly ``m`` survivors the set is still
feasible and its bottleneck can only be higher.  We implement ``l >= m``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .compute import top_compute_nodes
from .metrics import (
    DEFAULT_REFERENCES,
    References,
    min_cpu_fraction,
    min_pairwise_bandwidth,
    min_pairwise_bandwidth_fraction,
)
from .types import NoFeasibleSelection, Selection

__all__ = ["select_max_bandwidth"]


def _largest_compute_component(
    graph: TopologyGraph, eligible: Optional[Callable[[Node], bool]]
) -> tuple[set[str], int]:
    """The component with the most eligible compute nodes (and that count).

    Ties break toward the component containing the lexicographically
    smallest node name, keeping runs reproducible.
    """
    best: set[str] = set()
    best_count = -1
    best_key = ""
    for comp in graph.connected_components():
        count = 0
        for name in comp:
            node = graph.node(name)
            if node.is_compute and (eligible is None or eligible(node)):
                count += 1
        key = min(comp)
        if count > best_count or (count == best_count and key < best_key):
            best, best_count, best_key = comp, count, key
    return best, max(best_count, 0)


def select_max_bandwidth(
    graph: TopologyGraph,
    m: int,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Select ``m`` nodes maximizing the minimum pairwise available bandwidth.

    Implements Figure 2 on a copy of ``graph`` (the input is not mutated).
    Among equally-optimal node subsets inside the surviving component, the
    ``m`` nodes with the highest CPU fraction are returned ("any m compute
    nodes" in the paper — the communication objective is indifferent, so we
    use spare CPU as the tie-break).

    Parameters
    ----------
    graph:
        Topology snapshot; must be acyclic for the optimality guarantee
        (use :func:`repro.core.generalized.select_routed` on cyclic graphs).
    m:
        Number of compute nodes required.
    refs:
        Reference capacities (used only for reporting fractions and the
        CPU tie-break; the criterion itself is absolute bandwidth).
    eligible:
        Optional predicate restricting candidate compute nodes.

    Returns
    -------
    Selection
        ``objective`` is the achieved minimum pairwise bandwidth in bps.

    Raises
    ------
    NoFeasibleSelection
        If no connected component contains ``m`` eligible compute nodes.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    work = graph.copy()

    comp, count = _largest_compute_component(work, eligible)
    if count < m:
        raise NoFeasibleSelection(
            f"no connected component with {m} eligible compute nodes"
        )

    def pick(component: set[str]) -> list[str]:
        nodes = [work.node(n) for n in component]
        if eligible is not None:
            nodes = [n for n in nodes if not n.is_compute or eligible(n)]
        chosen = top_compute_nodes(nodes, m, refs)
        return [n.name for n in chosen]

    # Step 1: any m compute nodes of the (feasible) largest component.
    selected = pick(comp)
    iterations = 0

    # Steps 2-4: peel minimum-bandwidth edges while feasibility holds.
    while True:
        worst = work.min_bandwidth_link()
        if worst is None:
            break
        work.remove_link(worst.u, worst.v)
        iterations += 1
        comp, count = _largest_compute_component(work, eligible)
        if count < m:
            break
        selected = pick(comp)

    min_bw = min_pairwise_bandwidth(graph, selected)
    return Selection(
        nodes=selected,
        objective=min_bw,
        min_cpu_fraction=min_cpu_fraction(graph, selected, refs),
        min_bw_fraction=min_pairwise_bandwidth_fraction(graph, selected, refs),
        min_bw_bps=min_bw,
        algorithm="max-bandwidth",
        iterations=iterations,
    )
