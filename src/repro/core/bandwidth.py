"""Maximize-communication node selection — the Figure 2 algorithm.

Criterion (§3.2): *maximize the minimum available bandwidth between any
pair of selected nodes* — minimize the bottleneck communication path.

The algorithm exploits the key acyclic-graph fact the paper states: the
least bandwidth between any pair of connected nodes cannot be less than the
lowest edge bandwidth in (their component of) the graph.  So: repeatedly
remove the globally minimum-available-bandwidth edge; as long as some
connected component still contains ``m`` compute nodes, those nodes only
communicate over edges *better* than everything removed so far.  When no
such component survives, the last surviving candidate set is optimal.

The paper's Figure 2 states the loop guard as ``l > m``; continuing while
``l >= m`` is the intended reading (the text says "testing if enough
connected nodes exist" and "eventually this size will become less than
m"), and strictly dominates: with exactly ``m`` survivors the set is still
feasible and its bottleneck can only be higher.  We implement ``l >= m``.

Execution runs on the incremental kernel (:mod:`repro.core.kernel`),
which replays the fixed peel order in reverse with a union-find instead
of re-deriving components each step; the naive transcription survives in
:mod:`repro.core.reference` as the differential-testing oracle.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..topology.graph import Node, TopologyGraph
from .kernel import kernel_select_max_bandwidth
from .metrics import DEFAULT_REFERENCES, References
from .types import Selection

__all__ = ["select_max_bandwidth"]


def select_max_bandwidth(
    graph: TopologyGraph,
    m: int,
    *,
    refs: References = DEFAULT_REFERENCES,
    eligible: Optional[Callable[[Node], bool]] = None,
) -> Selection:
    """Select ``m`` nodes maximizing the minimum pairwise available bandwidth.

    Implements Figure 2 without mutating ``graph``.  Among equally-optimal
    node subsets inside the surviving component, the ``m`` nodes with the
    highest CPU fraction are returned ("any m compute nodes" in the paper —
    the communication objective is indifferent, so we use spare CPU as the
    tie-break).

    Parameters
    ----------
    graph:
        Topology snapshot; must be acyclic for the optimality guarantee
        (use :func:`repro.core.generalized.select_routed` on cyclic graphs).
    m:
        Number of compute nodes required.
    refs:
        Reference capacities (used only for reporting fractions and the
        CPU tie-break; the criterion itself is absolute bandwidth).
    eligible:
        Optional predicate restricting candidate compute nodes.

    Returns
    -------
    Selection
        ``objective`` is the achieved minimum pairwise bandwidth in bps.

    Raises
    ------
    NoFeasibleSelection
        If no connected component contains ``m`` eligible compute nodes.
    """
    return kernel_select_max_bandwidth(graph, m, refs=refs, eligible=eligible)
