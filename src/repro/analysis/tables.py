"""ASCII table formatting for experiment reports.

Renders rows in the style of the paper's Table 1 so bench output can be
eyeballed against the original.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, signed: bool = True) -> str:
    """``-23.8%`` style formatting."""
    sign = "+" if signed and value > 0 else ""
    return f"{sign}{value:.1f}%"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width ASCII table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[_cell(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt_row(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)
