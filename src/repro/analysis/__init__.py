"""Statistics and report formatting for experiment campaigns."""

from .stats import (
    Summary,
    percent_change,
    slowdown_percent,
    summarize,
    welch_t,
)
from .tables import format_percent, format_table
from .timeseries import Recorder, Series

__all__ = [
    "Summary",
    "Recorder",
    "Series",
    "format_percent",
    "format_table",
    "percent_change",
    "slowdown_percent",
    "summarize",
    "welch_t",
]
