"""Time-series recording of simulated quantities.

A :class:`Recorder` samples arbitrary probe callables on a fixed period of
simulated time (host load, link utilization, queue depths, ...) and
provides the summary statistics experiments need: time averages, peaks,
and threshold occupancy.  Used by tests, examples, and the benches to
characterize generator behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..des.simulator import Simulator

__all__ = ["Series", "Recorder"]


@dataclass
class Series:
    """One sampled time series."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} has no samples")
        return self.values[-1]

    def mean(self) -> float:
        """Arithmetic mean of the samples (uniform period ⇒ time average)."""
        if not self.values:
            raise ValueError(f"series {self.name!r} has no samples")
        return sum(self.values) / len(self.values)

    def peak(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} has no samples")
        return max(self.values)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``."""
        if not self.values:
            raise ValueError(f"series {self.name!r} has no samples")
        return sum(v > threshold for v in self.values) / len(self.values)

    def window(self, start: float, end: float) -> "Series":
        """The sub-series with ``start <= t <= end``."""
        out = Series(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t <= end:
                out.times.append(t)
                out.values.append(v)
        return out


class Recorder:
    """Samples registered probes every ``period`` simulated seconds.

    Parameters
    ----------
    sim:
        The simulator to sample on.
    period:
        Sampling period (seconds of simulated time).
    start:
        Start the sampling process immediately (default).

    Examples
    --------
    >>> rec = Recorder(sim, period=1.0)                  # doctest: +SKIP
    >>> rec.track("load-m1", lambda: cluster.host("m-1").load_average)
    >>> sim.run(until=600)                               # doctest: +SKIP
    >>> rec.series("load-m1").mean()                     # doctest: +SKIP
    """

    def __init__(self, sim: Simulator, period: float = 1.0, start: bool = True) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = float(period)
        self._probes: dict[str, Callable[[], float]] = {}
        self._series: dict[str, Series] = {}
        self._running = False
        if start:
            self.start()

    def track(self, name: str, probe: Callable[[], float]) -> Series:
        """Register a probe; returns its (live) series."""
        if name in self._probes:
            raise ValueError(f"duplicate series name {name!r}")
        self._probes[name] = probe
        self._series[name] = Series(name)
        return self._series[name]

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(f"no series {name!r}") from None

    def names(self) -> list[str]:
        return list(self._series)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._run(), name="recorder")

    def stop(self) -> None:
        self._running = False

    def sample_now(self) -> None:
        """Take one sample of every probe immediately."""
        now = self.sim.now
        for name, probe in self._probes.items():
            series = self._series[name]
            series.times.append(now)
            series.values.append(float(probe()))

    def _run(self):
        while self._running:
            self.sample_now()
            yield self.sim.timeout(self.period)
