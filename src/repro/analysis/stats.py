"""Statistics helpers for experiment campaigns.

The paper stresses that "since the activity on the network is changing
continuously, a large number of measurements is necessary to have
statistically relevant results."  These helpers summarize campaigns with
confidence intervals and compare policies with Welch's t-test, so the
benches can report not just means but whether differences are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "welch_t",
    "percent_change",
    "slowdown_percent",
]


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and a normal-approximation confidence interval."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summary statistics with a CI on the mean.

    Uses the normal approximation (z = 1.96 at 95%); with the trial counts
    the campaigns use (≥10) this is adequate and avoids a scipy dependency
    in the core path.
    """
    xs = np.asarray(list(values), dtype=float)
    if xs.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(xs.mean())
    std = float(xs.std(ddof=1)) if xs.size > 1 else 0.0
    # Two-sided z for the requested confidence.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half = z * std / math.sqrt(xs.size) if xs.size > 1 else 0.0
    return Summary(
        n=int(xs.size), mean=mean, std=std,
        ci_low=mean - half, ci_high=mean + half,
    )


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, |err| < 6e-3)."""
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )


def welch_t(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Welch's t statistic and degrees of freedom for two samples.

    Returns ``(t, dof)``; a |t| above ~2 with reasonable dof indicates the
    means differ at the 95% level.  (The benches report t directly rather
    than a p-value to avoid a scipy dependency.)
    """
    xs = np.asarray(list(a), dtype=float)
    ys = np.asarray(list(b), dtype=float)
    if xs.size < 2 or ys.size < 2:
        raise ValueError("Welch's t needs at least two samples per group")
    va, vb = xs.var(ddof=1), ys.var(ddof=1)
    na, nb = xs.size, ys.size
    se2 = va / na + vb / nb
    if se2 == 0:
        return (0.0 if xs.mean() == ys.mean() else math.inf, float(na + nb - 2))
    t = (xs.mean() - ys.mean()) / math.sqrt(se2)
    dof = se2**2 / (
        (va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1)
    )
    return float(t), float(dof)


def percent_change(new: float, reference: float) -> float:
    """Relative change of ``new`` vs ``reference`` in percent.

    The paper's Table 1 derives e.g. ``82.6 s (-23.8%)`` from the random
    baseline; this is that computation.
    """
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return 100.0 * (new - reference) / reference


def slowdown_percent(loaded: float, unloaded: float) -> float:
    """Increase in execution time due to load/traffic, in percent.

    §4.3: "the FFT time went up from 48 to 142.6 seconds (201%)".
    """
    if unloaded <= 0:
        raise ValueError("unloaded time must be positive")
    return 100.0 * (loaded - unloaded) / unloaded
