"""Forecasting of resource availability from measurement history.

The paper "simply uses the most recent measurements as a forecast for the
future" and cites forecasting research (Network Weather Service, Dinda's
host-load studies) as orthogonal-but-relevant.  We provide the paper's
last-value policy plus the two classic alternatives so the ablation bench
(`bench_ablation_predictor`) can quantify what better forecasting buys.

A predictor consumes a history of ``(timestamp, value)`` samples (oldest
first) and produces a single forecast value.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

__all__ = ["Predictor", "LastValue", "SlidingMean", "Ewma", "sample_age"]

Sample = tuple[float, float]


def sample_age(history: Sequence[Sample], now: float) -> float:
    """Seconds between ``now`` and the newest sample (inf for no samples).

    The degraded-mode query layer reports this next to every answer so
    callers can judge how much to trust a forecast derived from the
    history.
    """
    if not history:
        return float("inf")
    return now - history[-1][0]


@runtime_checkable
class Predictor(Protocol):
    """Forecast the next value of a measured series."""

    def predict(self, history: Sequence[Sample]) -> float:  # pragma: no cover
        ...


class LastValue:
    """The paper's policy: the most recent measurement is the forecast."""

    def predict(self, history: Sequence[Sample]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        return history[-1][1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LastValue()"


class SlidingMean:
    """Mean of the samples inside a trailing time window.

    Parameters
    ----------
    window:
        Window length in seconds (measured back from the newest sample).
        Samples older than the window are ignored; the newest sample is
        always included.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)

    def predict(self, history: Sequence[Sample]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        newest = history[-1][0]
        cutoff = newest - self.window
        values = [v for t, v in history if t >= cutoff]
        return sum(values) / len(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingMean(window={self.window})"


class Ewma:
    """Exponentially weighted moving average over the history.

    ``alpha`` is the weight of each new sample (0 < alpha <= 1); alpha=1
    degenerates to :class:`LastValue`.
    """

    def __init__(self, alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def predict(self, history: Sequence[Sample]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        estimate = history[0][1]
        for _t, value in history[1:]:
            estimate += self.alpha * (value - estimate)
        return estimate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ewma(alpha={self.alpha})"
