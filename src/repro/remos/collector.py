"""The Remos collector: periodic SNMP polling and measurement history.

A DES process walks every agent each ``period`` seconds.  Link utilization
is derived from octet-counter deltas between consecutive polls (exactly how
SNMP-based monitors compute it), and a bounded history of utilization and
load samples is retained so queries can be answered over "a fixed window of
history, current network conditions, or an estimate of the future
availability" (§2.2).

Collection is hardened against the failure modes of a shared network:

- an agent that does not answer (:class:`~repro.remos.snmp.AgentTimeout`)
  is retried within the poll round with exponential backoff; a resource
  whose agents miss ``stale_after`` consecutive rounds is marked *stale*;
- octet-counter deltas detect 32-bit wraps (delta recovered modulo the
  counter) and counter resets (sample dropped), and are clamped to the
  interface speed — derived utilization can never be negative or absurd.

Staleness is also *pushed*: :meth:`Collector.subscribe` registers a
callback that fires at the end of any poll round in which a resource
crosses the staleness threshold in either direction —
``host-stale`` / ``host-fresh`` for compute nodes, ``channel-stale`` /
``channel-fresh`` for link channels.  The selection service's reactive
pipeline (``SelectionService.enable_push``) rides this instead of
discovering degradation at snapshot-fetch time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from ..network.cluster import Cluster
from ..network.fabric import ChannelId
from ..obs.trace import NULL_TRACER
from ..units import BITS_PER_BYTE
from .snmp import AgentTimeout, InterfaceRecord, build_agents

__all__ = ["Collector", "ResourceStatus"]

Sample = tuple[float, float]

#: Tolerance on the implied rate when validating a wrapped counter delta:
#: anything above this multiple of the interface speed is a reset, not a
#: wrap (real monitors use the same plausibility test).
_WRAP_RATE_SLACK = 1.25


@dataclass(frozen=True)
class ResourceStatus:
    """Health of one monitored resource, as seen by the collector."""

    age_s: float        # seconds since the last successful sample (inf: never)
    missed_polls: int   # consecutive poll rounds without a sample
    stale: bool         # missed_polls >= the collector's stale_after


class Collector:
    """Polls SNMP agents and maintains per-resource measurement history.

    Parameters
    ----------
    cluster:
        The simulated cluster to monitor.
    period:
        Poll period in seconds (the paper's Remos entailed "very low
        overhead"; the period controls the staleness/overhead trade-off).
    history:
        Number of samples retained per resource.
    start:
        If True (default), the polling process starts immediately at
        construction and runs for the life of the simulation.
    max_retries:
        How many times an unresponsive agent is re-polled within one round
        before the round gives up on it.
    backoff:
        Base delay (seconds) before the first retry; doubles per attempt.
    stale_after:
        Consecutive missed rounds after which a resource is flagged stale.
    counter_bits:
        Passed to the interface agents: bound exported octet counters at
        ``2**counter_bits`` (None: unbounded).
    tracer:
        A :class:`repro.obs.Tracer`; each completed poll round becomes a
        ``collector.poll`` span (wall-clock duration).  Default: off.
    registry:
        A :class:`repro.obs.MetricsRegistry` to export
        ``repro_collector_*`` instruments into (poll counts, sweep
        latency, stale resources, counter-wrap disambiguations).
        Default: no export.
    """

    def __init__(
        self,
        cluster: Cluster,
        period: float = 5.0,
        history: int = 120,
        start: bool = True,
        max_retries: int = 2,
        backoff: float = 0.5,
        stale_after: int = 3,
        counter_bits: Optional[int] = None,
        tracer=None,
        registry=None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if history < 2:
            raise ValueError(f"history must hold >= 2 samples, got {history}")
        if max_retries < 0:
            raise ValueError(f"max_retries cannot be negative: {max_retries}")
        if backoff <= 0:
            raise ValueError(f"backoff must be positive, got {backoff}")
        if stale_after < 1:
            raise ValueError(f"stale_after must be >= 1, got {stale_after}")
        if counter_bits is not None and counter_bits < 8:
            raise ValueError(f"counter_bits must be >= 8, got {counter_bits}")
        self.cluster = cluster
        self.period = float(period)
        self.history = history
        self.max_retries = max_retries
        self.backoff = float(backoff)
        self.stale_after = stale_after
        self.iface_agents, self.host_agents = build_agents(
            cluster, counter_bits=counter_bits
        )
        #: channel -> deque of (t, utilization_bps) derived samples
        self._util: dict[ChannelId, deque[Sample]] = {}
        #: channel -> last raw (t, octets) reading, for delta computation
        self._raw: dict[ChannelId, tuple[float, float]] = {}
        #: host -> deque of (t, load_average)
        self._load: dict[str, deque[Sample]] = {
            name: deque(maxlen=history) for name in self.host_agents
        }
        #: channel -> devices whose interface agent reports it
        self._reporters: dict[ChannelId, set[str]] = {}
        for name, agent in self.iface_agents.items():
            for cid in agent.interfaces:
                self._reporters.setdefault(cid, set()).add(name)
        self._channel_misses: dict[ChannelId, int] = {
            cid: 0 for cid in self._reporters
        }
        self._host_misses: dict[str, int] = {name: 0 for name in self.host_agents}
        #: Staleness transitions detected during the current poll round,
        #: delivered to subscribers when the round closes.
        self._pending_events: list[tuple[str, object]] = []
        #: Push subscribers (see :meth:`subscribe`), in subscription order.
        self._subscribers: list[Callable[[float, str, object], None]] = []
        #: Staleness-transition events delivered to subscribers.
        self.events_emitted = 0
        self.polls_completed = 0
        #: counter-delta samples dropped as resets/implausible wraps
        self.dropped_samples = 0
        #: agent polls that timed out (before and including retries)
        self.failed_polls = 0
        #: negative counter deltas recovered as 2^N wraps (vs dropped)
        self.wrap_disambiguations = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._poll_hist = None
        if registry is not None:
            self._bind_registry(registry)
        if start:
            cluster.sim.process(self._run(), name="remos-collector")

    def _bind_registry(self, reg) -> None:
        """Export collector instruments (callback-backed, free to poll)."""
        reg.counter("repro_collector_polls_total",
                    "Completed poll rounds.",
                    fn=lambda: float(self.polls_completed))
        reg.counter("repro_collector_dropped_samples_total",
                    "Counter-delta samples dropped as resets.",
                    fn=lambda: float(self.dropped_samples))
        reg.counter("repro_collector_failed_polls_total",
                    "Agent polls that timed out (including retries).",
                    fn=lambda: float(self.failed_polls))
        reg.counter("repro_collector_wrap_disambiguations_total",
                    "Negative counter deltas recovered as 2^N wraps.",
                    fn=lambda: float(self.wrap_disambiguations))
        reg.gauge("repro_collector_stale_resources",
                  "Resources past the stale_after missed-poll threshold.",
                  fn=lambda: float(self.stale_resources()))
        self._poll_hist = reg.histogram(
            "repro_collector_poll_duration_seconds",
            "Wall-clock duration of one complete poll round.",
        )

    # -- push subscriptions ------------------------------------------------------
    def subscribe(
        self, callback: Callable[[float, str, object], None]
    ) -> Callable[[], None]:
        """Register ``callback(t, kind, target)`` for staleness transitions.

        ``kind`` is one of ``host-stale`` / ``host-fresh`` (``target`` is
        the host name) or ``channel-stale`` / ``channel-fresh``
        (``target`` is the :class:`~repro.network.fabric.ChannelId`).
        Events fire once per threshold *crossing* — when a resource's
        consecutive misses first reach ``stale_after``, and when a stale
        resource next answers a poll — and are delivered at the end of
        the poll round that observed them, in subscription order.

        Returns an unsubscribe callable.  Unsubscribing (any callback)
        during delivery is safe: the revoked callback is skipped for the
        remainder of the round.  Callbacks run synchronously inside the
        collector's round; they must not raise.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:  # already unsubscribed — idempotent
                pass

        return unsubscribe

    def _flush_events(self) -> None:
        """Deliver this round's transition events in subscription order."""
        events, self._pending_events = self._pending_events, []
        if not self._subscribers:
            return
        now = self.cluster.sim.now
        for kind, target in events:
            self.events_emitted += 1
            for callback in list(self._subscribers):
                if callback not in self._subscribers:
                    continue  # unsubscribed during this delivery
                callback(now, kind, target)

    def _finish_round(self, wall_start: float, failed: int) -> None:
        """Per-round telemetry: sweep-latency histogram and a poll span."""
        self._flush_events()
        wall_end = perf_counter()
        if self._poll_hist is not None:
            self._poll_hist.observe(wall_end - wall_start)
        if self.tracer.enabled:
            self.tracer.record(
                "collector.poll", wall_start, wall_end,
                round=self.polls_completed, failed=failed,
                t=self.cluster.sim.now,
            )

    # -- polling --------------------------------------------------------------
    def _ingest_record(self, rec: InterfaceRecord) -> None:
        """Fold one counter reading into the utilization history.

        Handles wrap (delta recovered modulo ``counter_max`` when the
        implied rate stays plausible) and reset (negative delta with no
        plausible wrap: drop the interval — there is no way to know how
        many octets the reboot swallowed).
        """
        prev = self._raw.get(rec.channel)
        self._raw[rec.channel] = (rec.timestamp, rec.out_octets)
        if prev is None:
            return
        t0, octets0 = prev
        dt = rec.timestamp - t0
        if dt <= 0:
            return
        delta = rec.out_octets - octets0
        if delta < 0:
            wrapped = None
            if rec.counter_max is not None and octets0 <= rec.counter_max:
                wrapped = delta + rec.counter_max
                if (
                    wrapped * BITS_PER_BYTE / dt
                    > rec.speed_bps * _WRAP_RATE_SLACK
                ):
                    wrapped = None  # too fast to be a wrap: a reset
            if wrapped is None:
                self.dropped_samples += 1
                return
            delta = wrapped
            self.wrap_disambiguations += 1
        util = min(delta * BITS_PER_BYTE / dt, rec.speed_bps)
        self._util.setdefault(
            rec.channel, deque(maxlen=self.history)
        ).append((rec.timestamp, util))

    def _poll_subset(
        self, iface_names, host_names
    ) -> tuple[list[str], list[str]]:
        """Poll the named agents once; returns (failed_iface, failed_host).

        Successful reads record samples and clear the resource's miss
        counters; failures are only reported — the caller decides whether
        the round is over (and misses should be counted) or a retry is due.
        """
        seen: set[ChannelId] = set()
        failed_iface: list[str] = []
        failed_host: list[str] = []
        for name in iface_names:
            agent = self.iface_agents[name]
            try:
                records = agent.read()
            except AgentTimeout:
                self.failed_polls += 1
                failed_iface.append(name)
                continue
            for rec in records:
                if self._channel_misses[rec.channel] >= self.stale_after:
                    self._pending_events.append(
                        ("channel-fresh", rec.channel)
                    )
                self._channel_misses[rec.channel] = 0
                if rec.channel in seen:
                    continue  # half-duplex channels reported by both ends
                seen.add(rec.channel)
                self._ingest_record(rec)
        for name in host_names:
            agent = self.host_agents[name]
            try:
                t, load = agent.read()
            except AgentTimeout:
                self.failed_polls += 1
                failed_host.append(name)
                continue
            self._load[name].append((t, load))
            if self._host_misses[name] >= self.stale_after:
                self._pending_events.append(("host-fresh", name))
            self._host_misses[name] = 0
        return failed_iface, failed_host

    def _count_misses(self, failed_iface: list[str], failed_host: list[str]) -> None:
        """Close a poll round: charge a miss to every un-sampled resource."""
        dead = set(failed_iface)
        for cid, reporters in self._reporters.items():
            if reporters <= dead:
                self._channel_misses[cid] += 1
                if self._channel_misses[cid] == self.stale_after:
                    self._pending_events.append(("channel-stale", cid))
        for name in failed_host:
            self._host_misses[name] += 1
            if self._host_misses[name] == self.stale_after:
                self._pending_events.append(("host-stale", name))

    def poll_once(self) -> list[str]:
        """One synchronous poll round of every agent (also used by tests).

        Returns the names of devices whose agent(s) did not answer; their
        resources are charged a missed round.  The background process
        (:meth:`_run`) retries those before charging misses instead.
        """
        wall_start = perf_counter()
        failed_iface, failed_host = self._poll_subset(
            self.iface_agents, self.host_agents
        )
        self._count_misses(failed_iface, failed_host)
        self.polls_completed += 1
        failed = sorted(set(failed_iface) | set(failed_host))
        self._finish_round(wall_start, len(failed))
        return failed

    def _run(self):
        sim = self.cluster.sim
        while True:
            round_start = sim.now
            wall_start = perf_counter()
            failed_iface, failed_host = self._poll_subset(
                self.iface_agents, self.host_agents
            )
            delay = self.backoff
            for _attempt in range(self.max_retries):
                if not (failed_iface or failed_host):
                    break
                yield sim.timeout(delay)
                delay *= 2.0
                failed_iface, failed_host = self._poll_subset(
                    failed_iface, failed_host
                )
            self._count_misses(failed_iface, failed_host)
            self.polls_completed += 1
            self._finish_round(
                wall_start, len(set(failed_iface) | set(failed_host))
            )
            # Keep the round cadence: next round starts one period after
            # this one began (retries eat into the idle gap, never drift
            # the schedule — unless they overran the whole period).
            spent = sim.now - round_start
            yield sim.timeout(max(self.period - spent, self.period * 0.1))

    # -- query surface ----------------------------------------------------------
    def utilization_history(self, channel: ChannelId) -> list[Sample]:
        """(t, bps) utilization samples for a channel, oldest first."""
        return list(self._util.get(channel, ()))

    def load_history(self, host: str) -> list[Sample]:
        """(t, load_average) samples for a compute node, oldest first."""
        try:
            return list(self._load[host])
        except KeyError:
            raise KeyError(f"no monitored host {host!r}") from None

    def channels(self) -> list[ChannelId]:
        """All channels with at least one derived utilization sample."""
        return list(self._util)

    def age(self) -> float:
        """Seconds since the newest completed poll (staleness indicator)."""
        newest = max(
            (t for t, _o in self._raw.values()),
            default=float("-inf"),
        )
        return self.cluster.sim.now - newest

    # -- health surface ---------------------------------------------------------
    def host_status(self, host: str) -> ResourceStatus:
        """Sample age and staleness of one compute node's load series."""
        try:
            missed = self._host_misses[host]
        except KeyError:
            raise KeyError(f"no monitored host {host!r}") from None
        history = self._load[host]
        age = (
            self.cluster.sim.now - history[-1][0] if history else float("inf")
        )
        return ResourceStatus(
            age_s=age, missed_polls=missed, stale=missed >= self.stale_after
        )

    def channel_status(self, channel: ChannelId) -> ResourceStatus:
        """Sample age and staleness of one channel's counter series."""
        try:
            missed = self._channel_misses[channel]
        except KeyError:
            raise KeyError(f"no monitored channel {channel!r}") from None
        last = self._raw.get(channel)
        age = self.cluster.sim.now - last[0] if last else float("inf")
        return ResourceStatus(
            age_s=age, missed_polls=missed, stale=missed >= self.stale_after
        )

    def host_stale(self, host: str) -> bool:
        """True once a node has missed ``stale_after`` consecutive rounds."""
        return self.host_status(host).stale

    def stale_hosts(self) -> list[str]:
        """All currently unmonitorable compute nodes, sorted."""
        return sorted(
            name
            for name, missed in self._host_misses.items()
            if missed >= self.stale_after
        )

    def stale_resources(self) -> int:
        """Total stale resources (hosts + channels), for the gauge."""
        return sum(
            1 for m in self._host_misses.values() if m >= self.stale_after
        ) + sum(
            1 for m in self._channel_misses.values()
            if m >= self.stale_after
        )
