"""The Remos collector: periodic SNMP polling and measurement history.

A DES process walks every agent each ``period`` seconds.  Link utilization
is derived from octet-counter deltas between consecutive polls (exactly how
SNMP-based monitors compute it), and a bounded history of utilization and
load samples is retained so queries can be answered over "a fixed window of
history, current network conditions, or an estimate of the future
availability" (§2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..network.cluster import Cluster
from ..network.fabric import ChannelId
from ..units import BITS_PER_BYTE
from .snmp import build_agents

__all__ = ["Collector"]

Sample = tuple[float, float]


class Collector:
    """Polls SNMP agents and maintains per-resource measurement history.

    Parameters
    ----------
    cluster:
        The simulated cluster to monitor.
    period:
        Poll period in seconds (the paper's Remos entailed "very low
        overhead"; the period controls the staleness/overhead trade-off).
    history:
        Number of samples retained per resource.
    start:
        If True (default), the polling process starts immediately at
        construction and runs for the life of the simulation.
    """

    def __init__(
        self,
        cluster: Cluster,
        period: float = 5.0,
        history: int = 120,
        start: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if history < 2:
            raise ValueError(f"history must hold >= 2 samples, got {history}")
        self.cluster = cluster
        self.period = float(period)
        self.history = history
        self.iface_agents, self.host_agents = build_agents(cluster)
        #: channel -> deque of (t, utilization_bps) derived samples
        self._util: dict[ChannelId, deque[Sample]] = {}
        #: channel -> last raw (t, octets) reading, for delta computation
        self._raw: dict[ChannelId, tuple[float, float]] = {}
        #: host -> deque of (t, load_average)
        self._load: dict[str, deque[Sample]] = {
            name: deque(maxlen=history) for name in self.host_agents
        }
        self.polls_completed = 0
        if start:
            cluster.sim.process(self._run(), name="remos-collector")

    # -- polling --------------------------------------------------------------
    def poll_once(self) -> None:
        """One synchronous poll of every agent (also used by tests)."""
        now = self.cluster.sim.now
        seen: set[ChannelId] = set()
        for agent in self.iface_agents.values():
            for rec in agent.read():
                if rec.channel in seen:
                    continue  # half-duplex channels reported by both ends
                seen.add(rec.channel)
                prev = self._raw.get(rec.channel)
                self._raw[rec.channel] = (rec.timestamp, rec.out_octets)
                if prev is None:
                    continue
                t0, octets0 = prev
                dt = rec.timestamp - t0
                if dt <= 0:
                    continue
                util = (rec.out_octets - octets0) * BITS_PER_BYTE / dt
                self._util.setdefault(
                    rec.channel, deque(maxlen=self.history)
                ).append((rec.timestamp, util))
        for name, agent in self.host_agents.items():
            t, load = agent.read()
            self._load[name].append((t, load))
        self.polls_completed += 1

    def _run(self):
        sim = self.cluster.sim
        while True:
            self.poll_once()
            yield sim.timeout(self.period)

    # -- query surface ----------------------------------------------------------
    def utilization_history(self, channel: ChannelId) -> list[Sample]:
        """(t, bps) utilization samples for a channel, oldest first."""
        return list(self._util.get(channel, ()))

    def load_history(self, host: str) -> list[Sample]:
        """(t, load_average) samples for a compute node, oldest first."""
        try:
            return list(self._load[host])
        except KeyError:
            raise KeyError(f"no monitored host {host!r}") from None

    def channels(self) -> list[ChannelId]:
        """All channels with at least one derived utilization sample."""
        return list(self._util)

    def age(self) -> float:
        """Seconds since the newest completed poll (staleness indicator)."""
        newest = max(
            (t for t, _o in self._raw.values()),
            default=float("-inf"),
        )
        return self.cluster.sim.now - newest
