"""Simulated SNMP agents.

The real Remos LAN implementation gathers link statistics by polling SNMP
daemons on network devices and host statistics from the compute nodes.  We
model that layer honestly: an :class:`InterfaceAgent` per device exposes
monotonically increasing per-interface octet counters read from the fabric
(the equivalent of ``ifOutOctets``), and a :class:`HostAgent` exposes the
host's damped load average.  The collector (:mod:`repro.remos.collector`)
only ever sees these agents — never the fabric's instantaneous truth — so
Remos queries inherit realistic measurement lag and quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.cluster import Cluster
from ..network.fabric import ChannelId

__all__ = ["InterfaceRecord", "InterfaceAgent", "HostAgent", "build_agents"]


@dataclass(frozen=True)
class InterfaceRecord:
    """One interface counter reading (an SNMP GET response)."""

    channel: ChannelId
    speed_bps: float
    out_octets: float
    timestamp: float


class InterfaceAgent:
    """SNMP agent on one device, exporting counters for incident channels.

    Each directional channel whose traffic *leaves* this device appears as
    one interface.  (For half-duplex links the single shared channel is
    reported by both endpoint agents; the collector deduplicates by channel
    id.)
    """

    def __init__(self, cluster: Cluster, device: str) -> None:
        self.cluster = cluster
        self.device = device
        self._channels: list[ChannelId] = []
        graph = cluster.graph
        for link in graph.incident_links(device):
            if link.attrs.get("duplex") == "half":
                self._channels.append((link.key, "shared"))
            else:
                # The outbound direction: towards the other endpoint.
                self._channels.append((link.key, link.other(device)))

    @property
    def interfaces(self) -> list[ChannelId]:
        """Channel ids of the interfaces this agent reports."""
        return list(self._channels)

    def read(self) -> list[InterfaceRecord]:
        """Poll all interfaces (one SNMP walk)."""
        fab = self.cluster.fabric
        now = self.cluster.sim.now
        return [
            InterfaceRecord(
                channel=cid,
                speed_bps=fab.capacity(cid),
                out_octets=fab.octet_counter(cid),
                timestamp=now,
            )
            for cid in self._channels
        ]


class HostAgent:
    """Per-host agent exporting the load average (rstat/host-MIB style)."""

    def __init__(self, cluster: Cluster, host: str) -> None:
        self.cluster = cluster
        self.host = host

    def read(self) -> tuple[float, float]:
        """(timestamp, load_average) for the host."""
        return (
            self.cluster.sim.now,
            self.cluster.host(self.host).load_average,
        )


def build_agents(
    cluster: Cluster,
) -> tuple[dict[str, InterfaceAgent], dict[str, HostAgent]]:
    """One interface agent per device and one host agent per compute node."""
    iface = {
        node.name: InterfaceAgent(cluster, node.name)
        for node in cluster.graph.nodes()
    }
    hosts = {name: HostAgent(cluster, name) for name in cluster.hosts}
    return iface, hosts
