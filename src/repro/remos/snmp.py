"""Simulated SNMP agents.

The real Remos LAN implementation gathers link statistics by polling SNMP
daemons on network devices and host statistics from the compute nodes.  We
model that layer honestly: an :class:`InterfaceAgent` per device exposes
monotonically increasing per-interface octet counters read from the fabric
(the equivalent of ``ifOutOctets``), and a :class:`HostAgent` exposes the
host's damped load average.  The collector (:mod:`repro.remos.collector`)
only ever sees these agents — never the fabric's instantaneous truth — so
Remos queries inherit realistic measurement lag and quantization.

Agents also model the ways real SNMP daemons misbehave:

- a request to a crashed host, or to a device inside a silence window set
  by the fault injector, raises :class:`AgentTimeout` (an unanswered poll);
- interface counters may be bounded (``counter_bits=32`` reproduces the
  classic 32-bit ``ifOutOctets`` wrap at 2^32 octets);
- :meth:`InterfaceAgent.reset_counters` reproduces a device reboot, after
  which counters restart near zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..network.cluster import Cluster
from ..network.fabric import ChannelId

__all__ = [
    "AgentTimeout",
    "InterfaceRecord",
    "InterfaceAgent",
    "HostAgent",
    "build_agents",
]


class AgentTimeout(Exception):
    """An SNMP request went unanswered (crashed node, drop, or overload)."""


@dataclass(frozen=True)
class InterfaceRecord:
    """One interface counter reading (an SNMP GET response).

    ``counter_max`` is the counter modulus in octets (``2**counter_bits``)
    when the device exports bounded counters, else None; the collector
    needs it to disambiguate wraps from resets.
    """

    channel: ChannelId
    speed_bps: float
    out_octets: float
    timestamp: float
    counter_max: Optional[float] = None


class _FaultyAgent:
    """Shared unreliability state: a silence window set by fault injection."""

    def __init__(self) -> None:
        self.silent_until = float("-inf")

    def silence_for(self, seconds: float) -> None:
        """Make the agent unresponsive for ``seconds`` from now."""
        if seconds < 0:
            raise ValueError(f"silence duration cannot be negative: {seconds}")
        now = self.cluster.sim.now
        self.silent_until = max(self.silent_until, now + seconds)

    def _check_reachable(self, device: str) -> None:
        now = self.cluster.sim.now
        if now < self.silent_until:
            raise AgentTimeout(f"agent on {device!r} not responding")
        if not self.cluster.node_is_up(device):
            raise AgentTimeout(f"agent on {device!r} unreachable (node down)")


class InterfaceAgent(_FaultyAgent):
    """SNMP agent on one device, exporting counters for incident channels.

    Each directional channel whose traffic *leaves* this device appears as
    one interface.  (For half-duplex links the single shared channel is
    reported by both endpoint agents; the collector deduplicates by channel
    id.)

    Parameters
    ----------
    counter_bits:
        If set, exported octet counters are bounded at ``2**counter_bits``
        octets and wrap (32 reproduces SNMPv1 ``ifOutOctets``).  Default
        None: unbounded counters, the pre-fault-model behaviour.
    """

    def __init__(
        self,
        cluster: Cluster,
        device: str,
        counter_bits: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.cluster = cluster
        self.device = device
        self.counter_bits = counter_bits
        self._channels: list[ChannelId] = []
        #: per-channel baseline subtracted from the fabric's cumulative
        #: counter — advanced by reset_counters() to model a reboot.
        self._base: dict[ChannelId, float] = {}
        graph = cluster.graph
        for link in graph.incident_links(device):
            if link.attrs.get("duplex") == "half":
                self._channels.append((link.key, "shared"))
            else:
                # The outbound direction: towards the other endpoint.
                self._channels.append((link.key, link.other(device)))
        for cid in self._channels:
            self._base[cid] = 0.0

    @property
    def interfaces(self) -> list[ChannelId]:
        """Channel ids of the interfaces this agent reports."""
        return list(self._channels)

    @property
    def counter_max(self) -> Optional[float]:
        """Counter modulus in octets, or None for unbounded counters."""
        if self.counter_bits is None:
            return None
        return float(2 ** self.counter_bits)

    def reset_counters(self) -> None:
        """Model a device reboot: all exported counters restart at zero."""
        fab = self.cluster.fabric
        for cid in self._channels:
            self._base[cid] = fab.octet_counter(cid)

    def _export(self, raw: float, cid: ChannelId) -> float:
        octets = raw - self._base[cid]
        wrap = self.counter_max
        if wrap is not None:
            octets %= wrap
        return octets

    def read(self) -> list[InterfaceRecord]:
        """Poll all interfaces (one SNMP walk)."""
        self._check_reachable(self.device)
        fab = self.cluster.fabric
        now = self.cluster.sim.now
        return [
            InterfaceRecord(
                channel=cid,
                speed_bps=fab.capacity(cid),
                out_octets=self._export(fab.octet_counter(cid), cid),
                timestamp=now,
                counter_max=self.counter_max,
            )
            for cid in self._channels
        ]


class HostAgent(_FaultyAgent):
    """Per-host agent exporting the load average (rstat/host-MIB style)."""

    def __init__(self, cluster: Cluster, host: str) -> None:
        super().__init__()
        self.cluster = cluster
        self.host = host

    def read(self) -> tuple[float, float]:
        """(timestamp, load_average) for the host."""
        self._check_reachable(self.host)
        return (
            self.cluster.sim.now,
            self.cluster.host(self.host).load_average,
        )


def build_agents(
    cluster: Cluster,
    counter_bits: Optional[int] = None,
) -> tuple[dict[str, InterfaceAgent], dict[str, HostAgent]]:
    """One interface agent per device and one host agent per compute node."""
    iface = {
        node.name: InterfaceAgent(cluster, node.name, counter_bits=counter_bits)
        for node in cluster.graph.nodes()
    }
    hosts = {name: HostAgent(cluster, name) for name in cluster.hosts}
    return iface, hosts
