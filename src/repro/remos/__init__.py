"""Remos — the network-information query substrate (paper §2.2).

A faithful model of the Remos LAN implementation: simulated SNMP agents on
every device export octet counters and host load; a polling collector turns
counter deltas into utilization history; and :class:`RemosAPI` answers flow
queries and logical-topology queries through a pluggable forecast policy.
The selection framework (:class:`repro.core.NodeSelector`) consumes a
``RemosAPI`` directly as its topology provider.
"""

from .api import (
    DegradedPolicy,
    LinkInfo,
    NodeInfo,
    RemosAPI,
    apply_degraded_policy,
)
from .collector import Collector, ResourceStatus
from .predictor import Ewma, LastValue, Predictor, SlidingMean, sample_age
from .snmp import (
    AgentTimeout,
    HostAgent,
    InterfaceAgent,
    InterfaceRecord,
    build_agents,
)

__all__ = [
    "AgentTimeout",
    "Collector",
    "DegradedPolicy",
    "Ewma",
    "HostAgent",
    "InterfaceAgent",
    "InterfaceRecord",
    "LastValue",
    "LinkInfo",
    "NodeInfo",
    "Predictor",
    "RemosAPI",
    "ResourceStatus",
    "SlidingMean",
    "apply_degraded_policy",
    "build_agents",
    "sample_age",
]
