"""Remos — the network-information query substrate (paper §2.2).

A faithful model of the Remos LAN implementation: simulated SNMP agents on
every device export octet counters and host load; a polling collector turns
counter deltas into utilization history; and :class:`RemosAPI` answers flow
queries and logical-topology queries through a pluggable forecast policy.
The selection framework (:class:`repro.core.NodeSelector`) consumes a
``RemosAPI`` directly as its topology provider.
"""

from .api import LinkInfo, RemosAPI
from .collector import Collector
from .predictor import Ewma, LastValue, Predictor, SlidingMean
from .snmp import HostAgent, InterfaceAgent, InterfaceRecord, build_agents

__all__ = [
    "Collector",
    "Ewma",
    "HostAgent",
    "InterfaceAgent",
    "InterfaceRecord",
    "LastValue",
    "LinkInfo",
    "Predictor",
    "RemosAPI",
    "SlidingMean",
    "build_agents",
]
