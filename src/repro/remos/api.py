"""The Remos query API (paper §2.2).

Remos exports network information at two levels of abstraction:

- **Logical network topology** (:meth:`RemosAPI.topology`): a functional
  snapshot of the network with current traffic on links and load on nodes —
  the structural information the node-selection procedures exploit (§5
  argues this is the key advantage over pairwise measurement systems).
- **Flow queries** (:meth:`RemosAPI.flow_query` /
  :meth:`RemosAPI.flows_query`): available bandwidth between node pairs,
  accounting for the sharing of links by the queried flows themselves.

All answers derive from the collector's measurement history — never from
the simulator's hidden ground truth — passed through a configurable
:class:`~repro.remos.predictor.Predictor` (§2.2: history window / current
conditions / future estimate).

**Degraded mode.**  On a shared network the collector inevitably loses
samples (agent timeouts, crashed nodes, flapping links).  Instead of
raising, every answer carries its sample age and a staleness flag, and a
:class:`DegradedPolicy` decides what value a stale resource reports:

- ``OPTIMISTIC``: last-known-good values, resources never marked — the
  pre-fault-model behaviour, kept as the naive baseline;
- ``LAST_GOOD`` (default): last-known-good values, but stale nodes are
  marked ``unmonitorable`` in the topology so selection can exclude them;
- ``CONSERVATIVE``: additionally assume the worst — a stale link has zero
  available bandwidth and a stale node infinite load (CPU fraction 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..network.cluster import Cluster
from ..network.fairshare import max_min_fair
from ..obs.trace import NULL_TRACER
from ..topology.graph import TopologyGraph
from .collector import Collector
from .predictor import LastValue, Predictor

__all__ = [
    "RemosAPI",
    "LinkInfo",
    "NodeInfo",
    "DegradedPolicy",
    "apply_degraded_policy",
]


class DegradedPolicy:
    """How queries answer for resources with stale/missing measurements."""

    OPTIMISTIC = "optimistic"
    LAST_GOOD = "last-known-good"
    CONSERVATIVE = "conservative"

    ALL = (OPTIMISTIC, LAST_GOOD, CONSERVATIVE)


@dataclass(frozen=True)
class LinkInfo:
    """Per-link information exported by Remos (§2.2).

    ``age_s`` is the oldest sample age over the link's channels; ``stale``
    is set once the collector has missed enough consecutive polls of the
    link's counters (degraded-mode answer).
    """

    u: str
    v: str
    capacity_bps: float
    utilization_fwd_bps: float  # traffic u -> v
    utilization_rev_bps: float  # traffic v -> u
    latency_s: float
    age_s: float = 0.0
    stale: bool = False

    @property
    def available_fwd_bps(self) -> float:
        return max(0.0, self.capacity_bps - self.utilization_fwd_bps)

    @property
    def available_rev_bps(self) -> float:
        return max(0.0, self.capacity_bps - self.utilization_rev_bps)


@dataclass(frozen=True)
class NodeInfo:
    """Per-node information exported by Remos, with measurement health."""

    name: str
    load_average: float
    age_s: float = 0.0
    stale: bool = False


class RemosAPI:
    """Query interface to (simulated) network resource information.

    Parameters
    ----------
    collector:
        The polling collector backing every answer.
    predictor:
        Forecast policy applied to measurement histories (default: the
        paper's most-recent-measurement rule).
    degraded:
        A :class:`DegradedPolicy` value selecting how stale resources are
        answered (default: last-known-good, marked).
    tracer:
        A :class:`repro.obs.Tracer`; every :meth:`topology` sweep becomes
        a ``remos.topology`` span carrying the degraded policy and how
        many resources answered stale.  Default: off.
    """

    def __init__(
        self,
        collector: Collector,
        predictor: Optional[Predictor] = None,
        degraded: str = DegradedPolicy.LAST_GOOD,
        tracer=None,
    ) -> None:
        if not isinstance(collector, Collector):
            raise TypeError(
                f"collector must be a Collector, got {type(collector).__name__}"
            )
        if degraded not in DegradedPolicy.ALL:
            raise ValueError(
                f"unknown degraded policy {degraded!r}; "
                f"expected one of {DegradedPolicy.ALL}"
            )
        self.collector = collector
        self.predictor = predictor or LastValue()
        self.degraded = degraded
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Full topology sweeps answered (every :meth:`topology` call walks
        #: all hosts and links).  The selection service's snapshot cache is
        #: judged against this counter.
        self.topology_sweeps = 0

    @property
    def cluster(self) -> Cluster:
        return self.collector.cluster

    # -- §2.2 query levels ---------------------------------------------------
    def current(self) -> "RemosAPI":
        """A view answering from *current* conditions (last measurement)."""
        return RemosAPI(self.collector, predictor=LastValue(),
                        degraded=self.degraded)

    def windowed(self, seconds: float) -> "RemosAPI":
        """A view answering from a fixed window of history (mean)."""
        from .predictor import SlidingMean
        return RemosAPI(self.collector, predictor=SlidingMean(seconds),
                        degraded=self.degraded)

    def forecast(self, alpha: float = 0.3) -> "RemosAPI":
        """A view answering with an EWMA estimate of future availability."""
        from .predictor import Ewma
        return RemosAPI(self.collector, predictor=Ewma(alpha),
                        degraded=self.degraded)

    # -- node-level queries ------------------------------------------------------
    def node_info(self, name: str) -> NodeInfo:
        """Forecast load plus measurement health for one compute node."""
        history = self.collector.load_history(name)
        status = self.collector.host_status(name)
        if not history:
            # An unmonitored node looks idle — exactly the optimistic error
            # a fresh monitor makes.  (Not stale: nothing was ever missed.)
            load = 0.0
        elif status.stale and self.degraded == DegradedPolicy.CONSERVATIVE:
            load = float("inf")
        else:
            load = max(0.0, self.predictor.predict(history))
        return NodeInfo(
            name=name,
            load_average=load,
            age_s=status.age_s,
            stale=status.stale and self.degraded != DegradedPolicy.OPTIMISTIC,
        )

    def node_load(self, name: str) -> float:
        """Forecast load average of a compute node.

        Returns 0.0 when no measurement exists yet; under the conservative
        degraded policy a *stale* node reports infinite load instead.
        """
        return self.node_info(name).load_average

    # -- link-level queries ------------------------------------------------------
    def _channel_utilization(self, channel) -> float:
        history = self.collector.utilization_history(channel)
        if not history:
            return 0.0
        return max(0.0, self.predictor.predict(history))

    def link_info(self, u: str, v: str) -> LinkInfo:
        """Capacity, measured utilization, latency and health for one link."""
        graph = self.cluster.graph
        link = graph.link(u, v)
        if link.attrs.get("duplex") == "half":
            cids = [(link.key, "shared")]
            util = self._channel_utilization(cids[0])
            fwd = rev = util
        else:
            cids = [(link.key, link.v), (link.key, link.u)]
            fwd = self._channel_utilization(cids[0])
            rev = self._channel_utilization(cids[1])
        statuses = [self.collector.channel_status(cid) for cid in cids]
        age = max(s.age_s for s in statuses)
        stale = any(s.stale for s in statuses)
        if stale and self.degraded == DegradedPolicy.CONSERVATIVE:
            # Assume the worst of an unobservable link: fully utilized.
            fwd = rev = link.maxbw
        # Orient the answer to the argument order.
        if (u, v) != (link.u, link.v):
            fwd, rev = rev, fwd
        return LinkInfo(
            u=u,
            v=v,
            capacity_bps=link.maxbw,
            utilization_fwd_bps=fwd,
            utilization_rev_bps=rev,
            latency_s=link.latency,
            age_s=age,
            stale=stale and self.degraded != DegradedPolicy.OPTIMISTIC,
        )

    # -- the logical topology query ----------------------------------------------
    def topology(self) -> TopologyGraph:
        """The logical topology annotated with measured availability.

        This is the graph the node-selection procedures run on: compute
        nodes carry forecast load averages, links carry forecast available
        bandwidth per direction.  Under a non-optimistic degraded policy,
        nodes whose monitoring went stale additionally carry
        ``attrs["unmonitorable"] = True`` so health-aware selection
        (:class:`repro.core.NodeSelector`) can exclude them.

        Measurement provenance rides along: every node and link whose
        sample age is finite carries ``attrs["age_s"]``, which the
        explain surface (:mod:`repro.obs.explain`) reports as the
        staleness of the inputs a selection decision read.
        """
        if self.tracer.enabled:
            with self.tracer.span(
                "remos.topology", policy=self.degraded
            ) as span:
                g, stale_count = self._topology_inner()
                span.set(stale_resources=stale_count)
                return g
        g, _stale = self._topology_inner()
        return g

    def _topology_inner(self) -> tuple[TopologyGraph, int]:
        self.topology_sweeps += 1
        g = self.cluster.graph.copy()
        mark = self.degraded != DegradedPolicy.OPTIMISTIC
        stale_count = 0
        for name in self.cluster.hosts:
            info = self.node_info(name)
            node = g.node(name)
            node.load_average = (
                info.load_average if info.load_average != float("inf")
                else _UNMONITORABLE_LOAD
            )
            if info.age_s != float("inf"):
                node.attrs["age_s"] = info.age_s
            if mark and info.stale:
                node.attrs["unmonitorable"] = True
                stale_count += 1
        for link in g.links():
            info = self.link_info(link.u, link.v)
            link.set_available(
                min(link.maxbw, info.available_fwd_bps), direction=link.v
            )
            link.set_available(
                min(link.maxbw, info.available_rev_bps), direction=link.u
            )
            if info.age_s != float("inf"):
                link.attrs["age_s"] = info.age_s
            if mark and info.stale:
                link.attrs["stale"] = True
                stale_count += 1
        return g, stale_count

    def export_snapshot(self) -> dict:
        """The current topology snapshot as a JSON-safe dict.

        Serialization-side counterpart of :meth:`topology`
        (:func:`repro.topology.to_dict` schema v1): what a remote client of
        the selection service receives, and what ``repro-select`` /
        ``repro-serve`` consume from files.  Degraded-mode marks
        (``unmonitorable``, ``stale``) survive the round trip, so
        :func:`apply_degraded_policy` can reinterpret an exported snapshot
        offline.
        """
        from ..topology.serialize import to_dict

        return to_dict(self.topology())

    # -- flow queries --------------------------------------------------------------
    def flow_query(self, src: str, dst: str) -> float:
        """Available bandwidth (bps) for one new flow src → dst."""
        return self.flows_query([(src, dst)])[0]

    def flows_query(self, pairs: Sequence[tuple[str, str]]) -> list[float]:
        """Available bandwidth for a *set* of prospective flows.

        §2.2: flow queries "account for sharing of network links by
        multiple flows" — if two requested flows cross the same link, each
        is quoted its max-min fair share of the link's *remaining*
        capacity.  Disconnected pairs are quoted 0.  Unknown node names
        raise ``KeyError`` immediately.
        """
        graph = self.cluster.graph
        for src, dst in pairs:
            for name in (src, dst):
                if not graph.has_node(name):
                    raise KeyError(
                        f"unknown node {name!r} in flow query "
                        f"({src!r} -> {dst!r})"
                    )
        topo = self.topology()
        routing = self.cluster.routing
        flows: dict[int, list] = {}
        capacities: dict = {}
        quotes: dict[int, float] = {}
        for i, (src, dst) in enumerate(pairs):
            if src == dst:
                quotes[i] = float("inf")
                continue
            path = routing.route(src, dst)
            if path is None:
                quotes[i] = 0.0
                continue
            route = []
            for a, b in zip(path, path[1:]):
                link = topo.link(a, b)
                if link.attrs.get("duplex") == "half":
                    cid = (link.key, "shared")
                else:
                    cid = (link.key, b)
                capacities[cid] = link.available_towards(b) if cid[1] != "shared" else link.available
                route.append(cid)
            flows[i] = route
        if flows:
            rates = max_min_fair(flows, capacities)
            quotes.update(rates)
        return [quotes[i] for i in range(len(pairs))]


#: Load average stood in for "infinite" on unmonitorable nodes in topology
#: snapshots: keeps ``cpu = 1/(1+load)`` effectively zero while remaining
#: finite for serialization and arithmetic downstream.
_UNMONITORABLE_LOAD = 1e9


def apply_degraded_policy(graph: TopologyGraph, policy: str) -> TopologyGraph:
    """Reinterpret a topology snapshot under a degraded-mode policy.

    Live queries bake the policy in at answer time; this is the offline
    equivalent for *serialized* snapshots (``repro-select`` on a JSON file,
    an exported :meth:`RemosAPI.export_snapshot`).  The snapshot's
    ``unmonitorable`` / ``stale`` marks record which resources were stale
    when it was taken; the policy decides what to make of them now:

    - ``OPTIMISTIC``: strip the marks — every resource answers its
      last-known-good value and nothing is excluded (the naive arm);
    - ``LAST_GOOD``: keep the snapshot as-is (marks exclude stale nodes
      from selection, values stay last-known-good);
    - ``CONSERVATIVE``: additionally assume the worst — stale links carry
      zero available bandwidth, unmonitorable nodes effectively no CPU.

    Returns a copy; the input graph is never mutated.
    """
    if policy not in DegradedPolicy.ALL:
        raise ValueError(
            f"unknown degraded policy {policy!r}; "
            f"expected one of {DegradedPolicy.ALL}"
        )
    g = graph.copy()
    if policy == DegradedPolicy.OPTIMISTIC:
        for node in g.nodes():
            node.attrs.pop("unmonitorable", None)
        for link in g.links():
            link.attrs.pop("stale", None)
    elif policy == DegradedPolicy.CONSERVATIVE:
        for node in g.nodes():
            if node.attrs.get("unmonitorable"):
                node.load_average = _UNMONITORABLE_LOAD
        for link in g.links():
            if link.attrs.get("stale"):
                link.set_available(0.0)
    return g
