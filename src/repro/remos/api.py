"""The Remos query API (paper §2.2).

Remos exports network information at two levels of abstraction:

- **Logical network topology** (:meth:`RemosAPI.topology`): a functional
  snapshot of the network with current traffic on links and load on nodes —
  the structural information the node-selection procedures exploit (§5
  argues this is the key advantage over pairwise measurement systems).
- **Flow queries** (:meth:`RemosAPI.flow_query` /
  :meth:`RemosAPI.flows_query`): available bandwidth between node pairs,
  accounting for the sharing of links by the queried flows themselves.

All answers derive from the collector's measurement history — never from
the simulator's hidden ground truth — passed through a configurable
:class:`~repro.remos.predictor.Predictor` (§2.2: history window / current
conditions / future estimate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..network.cluster import Cluster
from ..network.fairshare import max_min_fair
from ..topology.graph import TopologyGraph
from .collector import Collector
from .predictor import LastValue, Predictor

__all__ = ["RemosAPI", "LinkInfo"]


@dataclass(frozen=True)
class LinkInfo:
    """Per-link information exported by Remos (§2.2)."""

    u: str
    v: str
    capacity_bps: float
    utilization_fwd_bps: float  # traffic u -> v
    utilization_rev_bps: float  # traffic v -> u
    latency_s: float

    @property
    def available_fwd_bps(self) -> float:
        return max(0.0, self.capacity_bps - self.utilization_fwd_bps)

    @property
    def available_rev_bps(self) -> float:
        return max(0.0, self.capacity_bps - self.utilization_rev_bps)


class RemosAPI:
    """Query interface to (simulated) network resource information.

    Parameters
    ----------
    collector:
        The polling collector backing every answer.
    predictor:
        Forecast policy applied to measurement histories (default: the
        paper's most-recent-measurement rule).
    """

    def __init__(
        self,
        collector: Collector,
        predictor: Optional[Predictor] = None,
    ) -> None:
        self.collector = collector
        self.predictor = predictor or LastValue()

    @property
    def cluster(self) -> Cluster:
        return self.collector.cluster

    # -- §2.2 query levels ---------------------------------------------------
    def current(self) -> "RemosAPI":
        """A view answering from *current* conditions (last measurement)."""
        return RemosAPI(self.collector, predictor=LastValue())

    def windowed(self, seconds: float) -> "RemosAPI":
        """A view answering from a fixed window of history (mean)."""
        from .predictor import SlidingMean
        return RemosAPI(self.collector, predictor=SlidingMean(seconds))

    def forecast(self, alpha: float = 0.3) -> "RemosAPI":
        """A view answering with an EWMA estimate of future availability."""
        from .predictor import Ewma
        return RemosAPI(self.collector, predictor=Ewma(alpha))

    # -- node-level queries ------------------------------------------------------
    def node_load(self, name: str) -> float:
        """Forecast load average of a compute node.

        Returns 0.0 when no measurement exists yet (an unmonitored node
        looks idle — exactly the optimistic error a fresh monitor makes).
        """
        history = self.collector.load_history(name)
        if not history:
            return 0.0
        return max(0.0, self.predictor.predict(history))

    # -- link-level queries ------------------------------------------------------
    def _channel_utilization(self, channel) -> float:
        history = self.collector.utilization_history(channel)
        if not history:
            return 0.0
        return max(0.0, self.predictor.predict(history))

    def link_info(self, u: str, v: str) -> LinkInfo:
        """Capacity, measured utilization and latency for one link."""
        graph = self.cluster.graph
        link = graph.link(u, v)
        fab = self.cluster.fabric
        if link.attrs.get("duplex") == "half":
            util = self._channel_utilization((link.key, "shared"))
            fwd = rev = util
        else:
            fwd = self._channel_utilization((link.key, link.v))
            rev = self._channel_utilization((link.key, link.u))
        # Orient the answer to the argument order.
        if (u, v) != (link.u, link.v):
            fwd, rev = rev, fwd
        return LinkInfo(
            u=u,
            v=v,
            capacity_bps=link.maxbw,
            utilization_fwd_bps=fwd,
            utilization_rev_bps=rev,
            latency_s=link.latency,
        )

    # -- the logical topology query ----------------------------------------------
    def topology(self) -> TopologyGraph:
        """The logical topology annotated with measured availability.

        This is the graph the node-selection procedures run on: compute
        nodes carry forecast load averages, links carry forecast available
        bandwidth per direction.
        """
        g = self.cluster.graph.copy()
        for name in self.cluster.hosts:
            g.node(name).load_average = self.node_load(name)
        for link in g.links():
            info = self.link_info(link.u, link.v)
            link.set_available(
                min(link.maxbw, info.available_fwd_bps), direction=link.v
            )
            link.set_available(
                min(link.maxbw, info.available_rev_bps), direction=link.u
            )
        return g

    # -- flow queries --------------------------------------------------------------
    def flow_query(self, src: str, dst: str) -> float:
        """Available bandwidth (bps) for one new flow src → dst."""
        return self.flows_query([(src, dst)])[0]

    def flows_query(self, pairs: Sequence[tuple[str, str]]) -> list[float]:
        """Available bandwidth for a *set* of prospective flows.

        §2.2: flow queries "account for sharing of network links by
        multiple flows" — if two requested flows cross the same link, each
        is quoted its max-min fair share of the link's *remaining*
        capacity.  Disconnected pairs are quoted 0.
        """
        topo = self.topology()
        routing = self.cluster.routing
        flows: dict[int, list] = {}
        capacities: dict = {}
        quotes: dict[int, float] = {}
        for i, (src, dst) in enumerate(pairs):
            if src == dst:
                quotes[i] = float("inf")
                continue
            path = routing.route(src, dst)
            if path is None:
                quotes[i] = 0.0
                continue
            route = []
            for a, b in zip(path, path[1:]):
                link = topo.link(a, b)
                if link.attrs.get("duplex") == "half":
                    cid = (link.key, "shared")
                else:
                    cid = (link.key, b)
                capacities[cid] = link.available_towards(b) if cid[1] != "shared" else link.available
                route.append(cid)
            flows[i] = route
        if flows:
            rates = max_min_fair(flows, capacities)
            quotes.update(rates)
        return [quotes[i] for i in range(len(pairs))]
