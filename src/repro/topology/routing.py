"""Static routing over topology graphs (paper §3.3, "cycles in network
topology").

Networks often contain cycles, but with *static routing* every source /
destination pair uses one fixed path, so the selection algorithms remain
applicable: the effective communication graph between compute nodes is
determined by the routing table, and the bandwidth available between a pair
is the bottleneck along its routed path.

:class:`RoutingTable` computes deterministic shortest paths (Dijkstra on
latency with hop-count and name tie-breaking — the classic OSPF-like rule)
once, then answers path queries in O(path length).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from .graph import Link, TopologyGraph

__all__ = ["RoutingTable", "RoutedView"]


class RoutingTable:
    """Fixed shortest-path routes for every ordered node pair.

    Parameters
    ----------
    graph:
        The (possibly cyclic) topology to route.
    weight:
        Edge weight attribute: ``"hops"`` (default) or ``"latency"``.

    Routes are symmetric by construction (the tie-break is order-independent)
    and stable across runs, matching the paper's static-routing assumption.
    """

    def __init__(self, graph: TopologyGraph, weight: str = "hops") -> None:
        if weight not in ("hops", "latency"):
            raise ValueError(f"unknown weight {weight!r}")
        self._graph = graph
        self._weight = weight
        # parent maps per source, computed lazily per source node.
        self._parents: dict[str, dict[str, str]] = {}

    def _edge_weight(self, link: Link) -> float:
        return 1.0 if self._weight == "hops" else max(link.latency, 1e-12)

    def _compute_from(self, src: str) -> dict[str, str]:
        """Dijkstra from ``src`` with deterministic (dist, name) ordering."""
        graph = self._graph
        dist: dict[str, float] = {src: 0.0}
        parent: dict[str, str] = {src: src}
        heap: list[tuple[float, str]] = [(0.0, src)]
        done: set[str] = set()
        while heap:
            d, cur = heapq.heappop(heap)
            if cur in done:
                continue
            done.add(cur)
            for link in graph.incident_links(cur):
                nxt = link.other(cur)
                nd = d + self._edge_weight(link)
                if nxt not in dist or nd < dist[nxt] - 1e-15 or (
                    abs(nd - dist[nxt]) <= 1e-15 and parent.get(nxt, "") > cur
                ):
                    dist[nxt] = nd
                    parent[nxt] = cur
                    heapq.heappush(heap, (nd, nxt))
        return parent

    def _parent_map(self, src: str) -> dict[str, str]:
        table = self._parents.get(src)
        if table is None:
            if not self._graph.has_node(src):
                raise KeyError(f"no node {src!r}")
            table = self._compute_from(src)
            self._parents[src] = table
        return table

    def invalidate(self) -> None:
        """Drop cached routes (call after topology changes)."""
        self._parents.clear()

    def route(self, src: str, dst: str) -> Optional[list[str]]:
        """The fixed path from ``src`` to ``dst`` (None if disconnected).

        Paths are returned src→dst inclusive.  The route is read from the
        *destination's* shortest-path tree so that ``route(a, b)`` is the
        reverse of ``route(b, a)`` — bidirectional traffic between a pair
        shares one physical path, as on a statically routed network.
        """
        if not self._graph.has_node(dst):
            raise KeyError(f"no node {dst!r}")
        if src == dst:
            return [src] if self._graph.has_node(src) else None
        parent = self._parent_map(dst)
        if src not in parent:
            if not self._graph.has_node(src):
                raise KeyError(f"no node {src!r}")
            return None
        path = [src]
        while path[-1] != dst:
            path.append(parent[path[-1]])
        return path

    def route_links(self, src: str, dst: str) -> Optional[list[Link]]:
        """Links along the fixed route (None if disconnected)."""
        path = self.route(src, dst)
        if path is None:
            return None
        return self._graph.path_links(path)

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        """Available bandwidth src→dst along the routed path (bps)."""
        if src == dst:
            return float("inf")
        path = self.route(src, dst)
        if path is None:
            return 0.0
        return min(
            self._graph.link(a, b).available_towards(b)
            for a, b in zip(path, path[1:])
        )

    def latency(self, src: str, dst: str) -> float:
        """Total latency along the routed path (``inf`` if disconnected)."""
        if src == dst:
            return 0.0
        links = self.route_links(src, dst)
        if links is None:
            return float("inf")
        return sum(l.latency for l in links)


class RoutedView:
    """Reduce a routed (possibly cyclic) topology to an acyclic *overlay*.

    The paper's algorithms assume an acyclic graph.  For cyclic networks with
    static routing we build the union of all routed paths between the
    candidate compute nodes; if that union is a tree, the algorithms apply
    unchanged on it.  If the union still has cycles, the per-pair bottleneck
    matrix from :meth:`pair_bandwidth_matrix` feeds the pairwise fallback
    selector (:func:`repro.core.generalized.select_routed`).
    """

    def __init__(
        self,
        graph: TopologyGraph,
        routing: Optional[RoutingTable] = None,
        compute_nodes: Optional[Iterable[str]] = None,
    ) -> None:
        self.graph = graph
        self.routing = routing or RoutingTable(graph)
        if compute_nodes is None:
            self.compute_names = [n.name for n in graph.compute_nodes()]
        else:
            self.compute_names = list(compute_nodes)

    def used_link_keys(self) -> set[frozenset]:
        """Keys of links used by at least one routed compute-pair path."""
        used: set[frozenset] = set()
        names = self.compute_names
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                links = self.routing.route_links(a, b)
                if links:
                    used.update(l.key for l in links)
        return used

    def overlay(self) -> TopologyGraph:
        """Subgraph of nodes/links actually used by routed compute traffic."""
        used = self.used_link_keys()
        names: set[str] = set(self.compute_names)
        for key in used:
            names.update(key)
        sub = self.graph.subgraph(names)
        for link in list(sub.links()):
            if link.key not in used:
                sub.remove_link(link.u, link.v)
        return sub

    def pair_bandwidth_matrix(self) -> dict[tuple[str, str], float]:
        """Bottleneck available bandwidth for every ordered compute pair."""
        out: dict[tuple[str, str], float] = {}
        for a in self.compute_names:
            for b in self.compute_names:
                if a != b:
                    out[(a, b)] = self.routing.bottleneck_bandwidth(a, b)
        return out
