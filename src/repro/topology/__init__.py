"""Logical network topology graphs — the Remos graph model (paper §3.1).

This subpackage provides the data structure the node-selection algorithms
operate on (:class:`TopologyGraph` of compute/network nodes and links with
peak and available bandwidth), static routing for cyclic networks, builders
for standard shapes including the paper's Figure 1 example, and JSON/DOT
serialization.
"""

from .builders import (
    balanced_tree,
    two_campus,
    dumbbell,
    fat_tree_pod,
    figure1_network,
    grid,
    linear_lan_chain,
    random_tree,
    star,
    torus,
)
from .graph import (
    Link,
    Node,
    NodeKind,
    TopologyGraph,
    cpu_fraction,
    load_from_cpu_fraction,
)
from .residual import DirectedEdge, residual_graph
from .routing import RoutedView, RoutingTable
from .serialize import from_dict, from_json, to_dict, to_dot, to_json

__all__ = [
    "DirectedEdge",
    "Link",
    "Node",
    "NodeKind",
    "RoutedView",
    "RoutingTable",
    "TopologyGraph",
    "balanced_tree",
    "cpu_fraction",
    "dumbbell",
    "fat_tree_pod",
    "figure1_network",
    "from_dict",
    "from_json",
    "grid",
    "linear_lan_chain",
    "load_from_cpu_fraction",
    "random_tree",
    "residual_graph",
    "star",
    "to_dict",
    "to_dot",
    "to_json",
    "torus",
    "two_campus",
]
