"""Topology builders for common network shapes and the paper's examples.

All builders return a fresh :class:`~repro.topology.graph.TopologyGraph`.
Bandwidths are in bps; the paper's link speeds are expressed with
:data:`repro.units.Mbps`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..units import Mbps
from .graph import TopologyGraph

__all__ = [
    "star",
    "dumbbell",
    "linear_lan_chain",
    "balanced_tree",
    "random_tree",
    "fat_tree_pod",
    "grid",
    "torus",
    "two_campus",
    "figure1_network",
]

#: Default LAN link speed used by builders (matches the testbed Ethernet).
DEFAULT_BW = 100 * Mbps
#: Default single-hop latency (100 µs, a LAN-scale value).
DEFAULT_LATENCY = 100e-6


def star(
    num_hosts: int,
    bandwidth: float = DEFAULT_BW,
    latency: float = DEFAULT_LATENCY,
    switch_name: str = "switch",
    host_prefix: str = "h",
) -> TopologyGraph:
    """``num_hosts`` compute nodes hanging off one switch."""
    if num_hosts < 1:
        raise ValueError("need at least one host")
    g = TopologyGraph()
    g.add_network(switch_name)
    for i in range(num_hosts):
        name = f"{host_prefix}{i}"
        g.add_compute(name)
        g.add_link(name, switch_name, bandwidth, latency)
    return g


def dumbbell(
    left_hosts: int,
    right_hosts: int,
    bandwidth: float = DEFAULT_BW,
    cross_bandwidth: Optional[float] = None,
    latency: float = DEFAULT_LATENCY,
) -> TopologyGraph:
    """Two stars joined by a (possibly slower) trunk link.

    The classic shape for bottleneck experiments: all left↔right traffic
    crosses one link.
    """
    g = TopologyGraph()
    g.add_network("sw-left")
    g.add_network("sw-right")
    g.add_link("sw-left", "sw-right", cross_bandwidth or bandwidth, latency)
    for i in range(left_hosts):
        name = f"l{i}"
        g.add_compute(name)
        g.add_link(name, "sw-left", bandwidth, latency)
    for i in range(right_hosts):
        name = f"r{i}"
        g.add_compute(name)
        g.add_link(name, "sw-right", bandwidth, latency)
    return g


def linear_lan_chain(
    hosts_per_lan: Sequence[int],
    bandwidth: float = DEFAULT_BW,
    trunk_bandwidth: Optional[float] = None,
    latency: float = DEFAULT_LATENCY,
) -> TopologyGraph:
    """A chain of LAN switches, ``hosts_per_lan[i]`` hosts on switch i.

    Shapes like the CMU testbed (three routers in a line) are instances of
    this builder.
    """
    if not hosts_per_lan:
        raise ValueError("need at least one LAN")
    g = TopologyGraph()
    for i, count in enumerate(hosts_per_lan):
        sw = f"sw{i}"
        g.add_network(sw)
        if i > 0:
            g.add_link(f"sw{i-1}", sw, trunk_bandwidth or bandwidth, latency)
        for j in range(count):
            name = f"n{i}-{j}"
            g.add_compute(name)
            g.add_link(name, sw, bandwidth, latency)
    return g


def balanced_tree(
    depth: int,
    fanout: int,
    bandwidth: float = DEFAULT_BW,
    latency: float = DEFAULT_LATENCY,
) -> TopologyGraph:
    """A complete tree of switches with compute leaves.

    Internal vertices (including the root) are network nodes; the
    ``fanout**depth`` leaves are compute nodes.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    g = TopologyGraph()
    g.add_network("root")
    frontier = ["root"]
    for level in range(1, depth + 1):
        nxt: list[str] = []
        is_leaf = level == depth
        for parent in frontier:
            for k in range(fanout):
                name = f"{parent}.{k}" if parent != "root" else f"t{k}"
                if is_leaf:
                    g.add_compute(name)
                else:
                    g.add_network(name)
                g.add_link(parent, name, bandwidth, latency)
                nxt.append(name)
        frontier = nxt
    return g


def random_tree(
    num_compute: int,
    num_switches: int,
    rng: np.random.Generator,
    bandwidth: float = DEFAULT_BW,
    latency: float = DEFAULT_LATENCY,
) -> TopologyGraph:
    """A random tree with ``num_switches`` internal switches.

    Switches form a random tree (each attaches to a uniformly chosen earlier
    switch); each compute node attaches to a uniformly chosen switch.  Used
    heavily by the algorithm benchmarks and property tests.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    if num_compute < 1:
        raise ValueError("need at least one compute node")
    g = TopologyGraph()
    g.add_network("s0")
    for i in range(1, num_switches):
        name = f"s{i}"
        g.add_network(name)
        parent = f"s{int(rng.integers(0, i))}"
        g.add_link(name, parent, bandwidth, latency)
    for i in range(num_compute):
        name = f"c{i}"
        g.add_compute(name)
        sw = f"s{int(rng.integers(0, num_switches))}"
        g.add_link(name, sw, bandwidth, latency)
    return g


def fat_tree_pod(
    num_pods: int = 4,
    hosts_per_edge: int = 2,
    bandwidth: float = DEFAULT_BW,
    core_bandwidth: Optional[float] = None,
    latency: float = DEFAULT_LATENCY,
) -> TopologyGraph:
    """A small two-level fat-tree-ish topology (cyclic!).

    One core switch ring of ``num_pods`` switches, each pod has an edge
    switch with ``hosts_per_edge`` hosts.  Contains cycles, so it exercises
    the static-routing path (:mod:`repro.topology.routing`).
    """
    if num_pods < 3:
        raise ValueError("need at least 3 pods to form a ring")
    g = TopologyGraph()
    core_bw = core_bandwidth or bandwidth
    for p in range(num_pods):
        g.add_network(f"core{p}")
    for p in range(num_pods):
        g.add_link(f"core{p}", f"core{(p + 1) % num_pods}", core_bw, latency)
    for p in range(num_pods):
        edge = f"edge{p}"
        g.add_network(edge)
        g.add_link(edge, f"core{p}", bandwidth, latency)
        for h in range(hosts_per_edge):
            name = f"p{p}h{h}"
            g.add_compute(name)
            g.add_link(name, edge, bandwidth, latency)
    return g


def grid(
    rows: int,
    cols: int,
    bandwidth: float = DEFAULT_BW,
    latency: float = DEFAULT_LATENCY,
    host_prefix: str = "g",
) -> TopologyGraph:
    """A ``rows`` x ``cols`` mesh of directly linked compute nodes.

    The processor-grid shape of the Glantz et al. mapping experiments:
    node ``g{r}-{c}`` links to its right and down neighbours.  Cyclic for
    ``rows, cols >= 2``, so it exercises the partitioner's generic
    edge-cut path (no switches to anchor LAN-aware cuts).
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be >= 1: {rows}x{cols}")
    if rows * cols < 2:
        raise ValueError("grid needs at least two nodes")
    g = TopologyGraph()
    for r in range(rows):
        for c in range(cols):
            g.add_compute(f"{host_prefix}{r}-{c}", row=r, col=c)
    for r in range(rows):
        for c in range(cols):
            name = f"{host_prefix}{r}-{c}"
            if c + 1 < cols:
                g.add_link(name, f"{host_prefix}{r}-{c + 1}",
                           bandwidth, latency)
            if r + 1 < rows:
                g.add_link(name, f"{host_prefix}{r + 1}-{c}",
                           bandwidth, latency)
    return g


def torus(
    rows: int,
    cols: int,
    bandwidth: float = DEFAULT_BW,
    latency: float = DEFAULT_LATENCY,
    host_prefix: str = "g",
) -> TopologyGraph:
    """A :func:`grid` with wraparound links in both dimensions.

    Every node has degree 4 (the standard torus interconnect of Glantz
    et al.).  Dimensions below 3 would make a wrap link duplicate an
    existing mesh link, so both must be >= 3.
    """
    if rows < 3 or cols < 3:
        raise ValueError(
            f"torus dimensions must be >= 3 (got {rows}x{cols}): smaller "
            "wraparounds duplicate mesh links"
        )
    g = grid(rows, cols, bandwidth, latency, host_prefix)
    for r in range(rows):
        g.add_link(f"{host_prefix}{r}-{cols - 1}", f"{host_prefix}{r}-0",
                   bandwidth, latency)
    for c in range(cols):
        g.add_link(f"{host_prefix}{rows - 1}-{c}", f"{host_prefix}0-{c}",
                   bandwidth, latency)
    return g


def two_campus(
    fast_hosts: int = 6,
    slow_hosts: int = 6,
    fast_capacity: float = 1.0,
    slow_capacity: float = 0.4,
    fast_lan_bw: float = 100 * Mbps,
    slow_lan_bw: float = 10 * Mbps,
    wan_bw: float = 45 * Mbps,
    wan_latency: float = 5e-3,
) -> TopologyGraph:
    """A heterogeneous two-site network (§3.3 heterogeneity, §1 metacomputing).

    Campus A: ``fast_hosts`` modern machines (relative capacity
    ``fast_capacity``) on fast switched Ethernet.  Campus B: ``slow_hosts``
    older machines on a slower LAN.  The sites are joined by a T3-class
    WAN link with real latency.  Exercises reference-node/reference-link
    balancing and latency-bounded selection.
    """
    if fast_hosts < 1 or slow_hosts < 1:
        raise ValueError("need at least one host per campus")
    g = TopologyGraph()
    g.add_network("campusA")
    g.add_network("campusB")
    g.add_link("campusA", "campusB", wan_bw, wan_latency, medium="wan")
    for i in range(fast_hosts):
        name = f"a{i}"
        g.add_compute(name, compute_capacity=fast_capacity, arch="alpha")
        g.add_link(name, "campusA", fast_lan_bw, DEFAULT_LATENCY)
    for i in range(slow_hosts):
        name = f"b{i}"
        g.add_compute(name, compute_capacity=slow_capacity, arch="x86")
        g.add_link(name, "campusB", slow_lan_bw, DEFAULT_LATENCY)
    return g


def figure1_network() -> TopologyGraph:
    """The simple example network of the paper's Figure 1.

    A Remos logical topology graph for a small installation: two shared
    Ethernet segments bridged by a switch, with four hosts.  (The paper's
    figure is schematic; this builder captures its structure — hosts on
    shared segments represented by network nodes, a bridging switch — with
    concrete 10/100 Mbps capacities.)
    """
    g = TopologyGraph()
    g.add_network("switch")
    g.add_network("seg-A")
    g.add_network("seg-B")
    g.add_link("seg-A", "switch", 100 * Mbps, DEFAULT_LATENCY)
    g.add_link("seg-B", "switch", 100 * Mbps, DEFAULT_LATENCY)
    for i, seg in ((1, "seg-A"), (2, "seg-A"), (3, "seg-B"), (4, "seg-B")):
        name = f"host{i}"
        g.add_compute(name)
        g.add_link(name, seg, 10 * Mbps, DEFAULT_LATENCY)
    return g
