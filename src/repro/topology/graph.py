"""The logical network topology graph (paper §3.1).

A topology graph ``G(n)`` is an undirected connected graph whose nodes are
either *compute nodes* (processors available for computation) or *network
nodes* (routers/switches).  Edges are communication links annotated with a
peak capacity ``maxbw`` and a currently available bandwidth ``bw``; compute
nodes carry a load average from which the available CPU fraction

    ``cpu = 1 / (1 + loadaverage)``

is derived.  This module implements the graph structure, the paper's
derived quantities (``cpu``, ``bwfactor``), and the graph primitives the
selection algorithms in :mod:`repro.core` are built from (connected
components, unique tree paths, edge removal on copies).

Directed links (paper §3.3, "independent and shared network links") are
supported: a link may carry distinct available bandwidths per direction, and
``Link.available`` is then the minimum of the two, exactly as prescribed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "NodeKind",
    "Node",
    "Link",
    "TopologyGraph",
    "cpu_fraction",
    "load_from_cpu_fraction",
]


def cpu_fraction(load_average: float) -> float:
    """Available CPU fraction on a node: ``1 / (1 + loadaverage)`` (§3.1).

    The justification in the paper: the load average counts competing active
    processes, and a newly placed application process gets an equal share
    among ``load + 1`` processes.

    >>> cpu_fraction(0.0)
    1.0
    >>> cpu_fraction(1.0)
    0.5
    """
    if load_average < 0:
        raise ValueError(f"load average cannot be negative: {load_average}")
    return 1.0 / (1.0 + load_average)


def load_from_cpu_fraction(cpu: float) -> float:
    """Inverse of :func:`cpu_fraction` (used by tests and calibration)."""
    if not 0 < cpu <= 1:
        raise ValueError(f"cpu fraction must be in (0, 1], got {cpu}")
    return 1.0 / cpu - 1.0


class NodeKind:
    """Node role markers (plain strings keep serialization trivial)."""

    COMPUTE = "compute"
    NETWORK = "network"


@dataclass
class Node:
    """A vertex of the topology graph.

    Parameters
    ----------
    name:
        Unique identifier within the graph (e.g. ``"m-4"``, ``"gibraltar"``).
    kind:
        ``NodeKind.COMPUTE`` or ``NodeKind.NETWORK``.
    load_average:
        Run-queue load average; meaningful only for compute nodes.
    compute_capacity:
        Peak computation rate in ops/second relative to which heterogeneous
        balancing normalizes (§3.3).  ``1.0`` in homogeneous setups.
    attrs:
        Free-form properties used by placement constraints (e.g.
        ``{"arch": "alpha"}``).
    """

    name: str
    kind: str = NodeKind.COMPUTE
    load_average: float = 0.0
    compute_capacity: float = 1.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def is_compute(self) -> bool:
        return self.kind == NodeKind.COMPUTE

    @property
    def cpu(self) -> float:
        """Available CPU fraction, ``1/(1+load)`` (§3.1)."""
        return cpu_fraction(self.load_average)

    def copy(self) -> "Node":
        return Node(
            name=self.name,
            kind=self.kind,
            load_average=self.load_average,
            compute_capacity=self.compute_capacity,
            attrs=dict(self.attrs),
        )


@dataclass
class Link:
    """An edge of the topology graph: a communication link.

    ``maxbw`` is the peak capacity in bps.  Available bandwidth may differ
    per direction for full-duplex links with independent channels
    (``available_fwd`` = u→v, ``available_rev`` = v→u); the scalar
    ``available`` used by the selection algorithms is the minimum of the two
    directions, per paper §3.3.
    """

    u: str
    v: str
    maxbw: float
    latency: float = 0.0
    available_fwd: Optional[float] = None
    available_rev: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop on {self.u!r} not allowed")
        if self.maxbw <= 0:
            raise ValueError(f"maxbw must be positive, got {self.maxbw}")
        if self.latency < 0:
            raise ValueError(f"latency cannot be negative: {self.latency}")
        if self.available_fwd is None:
            self.available_fwd = self.maxbw
        if self.available_rev is None:
            self.available_rev = self.available_fwd
        for bw in (self.available_fwd, self.available_rev):
            if bw < 0:
                raise ValueError(f"available bandwidth cannot be negative: {bw}")

    @property
    def key(self) -> frozenset:
        """Canonical undirected edge key."""
        return frozenset((self.u, self.v))

    @property
    def available(self) -> float:
        """Available bandwidth ``bw`` (min over directions), in bps."""
        return min(self.available_fwd, self.available_rev)

    @property
    def bwfactor(self) -> float:
        """Fraction of peak bandwidth available: ``bw / maxbw`` (§3.1)."""
        return self.available / self.maxbw

    def available_towards(self, dst: str) -> float:
        """Available bandwidth in the direction ending at ``dst``."""
        if dst == self.v:
            return self.available_fwd
        if dst == self.u:
            return self.available_rev
        raise KeyError(f"{dst!r} is not an endpoint of {self!r}")

    def set_available(self, bw: float, direction: Optional[str] = None) -> None:
        """Set available bandwidth (both directions, or towards ``direction``)."""
        if bw < 0 or bw > self.maxbw + 1e-9:
            raise ValueError(
                f"available bw {bw} outside [0, maxbw={self.maxbw}]"
            )
        if direction is None:
            self.available_fwd = bw
            self.available_rev = bw
        elif direction == self.v:
            self.available_fwd = bw
        elif direction == self.u:
            self.available_rev = bw
        else:
            raise KeyError(f"{direction!r} is not an endpoint of {self!r}")

    def other(self, node: str) -> str:
        """The endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise KeyError(f"{node!r} is not an endpoint of {self!r}")

    def copy(self) -> "Link":
        return Link(
            u=self.u,
            v=self.v,
            maxbw=self.maxbw,
            latency=self.latency,
            available_fwd=self.available_fwd,
            available_rev=self.available_rev,
            attrs=dict(self.attrs),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.u}--{self.v}, max={self.maxbw:g}, "
            f"avail={self.available:g})"
        )


class TopologyGraph:
    """A mutable logical topology graph of nodes and links.

    The selection algorithms operate on *copies* of the graph obtained from
    Remos, repeatedly removing edges; this class therefore keeps all
    operations (copy, remove, components) simple and allocation-light.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._links: dict[frozenset, Link] = {}
        self._adj: dict[str, dict[str, Link]] = {}

    # -- construction -------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add a prebuilt :class:`Node` (name must be unused)."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adj[node.name] = {}
        return node

    def add_compute(
        self,
        name: str,
        load_average: float = 0.0,
        compute_capacity: float = 1.0,
        **attrs: Any,
    ) -> Node:
        """Convenience: add a compute node."""
        return self.add_node(
            Node(
                name=name,
                kind=NodeKind.COMPUTE,
                load_average=load_average,
                compute_capacity=compute_capacity,
                attrs=attrs,
            )
        )

    def add_network(self, name: str, **attrs: Any) -> Node:
        """Convenience: add a network (router/switch) node."""
        return self.add_node(Node(name=name, kind=NodeKind.NETWORK, attrs=attrs))

    def add_link(
        self,
        u: str,
        v: str,
        maxbw: float,
        latency: float = 0.0,
        available: Optional[float] = None,
        **attrs: Any,
    ) -> Link:
        """Connect ``u`` and ``v`` with a link of peak capacity ``maxbw`` bps."""
        for name in (u, v):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        key = frozenset((u, v))
        if key in self._links:
            raise ValueError(f"duplicate link {u!r}--{v!r}")
        link = Link(
            u=u, v=v, maxbw=maxbw, latency=latency,
            available_fwd=available, attrs=attrs,
        )
        self._links[key] = link
        self._adj[u][v] = link
        self._adj[v][u] = link
        return link

    def remove_link(self, u: str, v: str) -> Link:
        """Delete the link between ``u`` and ``v`` and return it."""
        key = frozenset((u, v))
        link = self._links.pop(key, None)
        if link is None:
            raise KeyError(f"no link {u!r}--{v!r}")
        del self._adj[u][v]
        del self._adj[v][u]
        return link

    def remove_node(self, name: str) -> Node:
        """Delete a node and all its incident links."""
        node = self._nodes.pop(name, None)
        if node is None:
            raise KeyError(f"no node {name!r}")
        for neighbor in list(self._adj[name]):
            self.remove_link(name, neighbor)
        del self._adj[name]
        return node

    # -- access --------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node {name!r}") from None

    def link(self, u: str, v: str) -> Link:
        """Look up the link between ``u`` and ``v``."""
        try:
            return self._links[frozenset((u, v))]
        except KeyError:
            raise KeyError(f"no link {u!r}--{v!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_link(self, u: str, v: str) -> bool:
        return frozenset((u, v)) in self._links

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes (insertion order)."""
        return iter(self._nodes.values())

    def links(self) -> Iterator[Link]:
        """Iterate all links (insertion order)."""
        return iter(self._links.values())

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def compute_nodes(self) -> list[Node]:
        """All compute nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_compute]

    def network_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if not n.is_compute]

    def neighbors(self, name: str) -> list[str]:
        """Names of nodes adjacent to ``name``."""
        if name not in self._adj:
            raise KeyError(f"no node {name!r}")
        return list(self._adj[name])

    def incident_links(self, name: str) -> list[Link]:
        """Links touching ``name``."""
        if name not in self._adj:
            raise KeyError(f"no node {name!r}")
        return list(self._adj[name].values())

    def degree(self, name: str) -> int:
        return len(self._adj[name])

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    # -- structure queries ----------------------------------------------------
    def connected_components(self) -> list[set[str]]:
        """Node-name sets of the connected components (BFS, deterministic)."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._nodes:
            if start in seen:
                continue
            comp = {start}
            queue = deque([start])
            seen.add(start)
            while queue:
                cur = queue.popleft()
                for nxt in self._adj[cur]:
                    if nxt not in seen:
                        seen.add(nxt)
                        comp.add(nxt)
                        queue.append(nxt)
            components.append(comp)
        return components

    def component_of(self, name: str) -> set[str]:
        """The connected component containing ``name``."""
        if name not in self._nodes:
            raise KeyError(f"no node {name!r}")
        comp = {name}
        queue = deque([name])
        while queue:
            cur = queue.popleft()
            for nxt in self._adj[cur]:
                if nxt not in comp:
                    comp.add(nxt)
                    queue.append(nxt)
        return comp

    def is_connected(self) -> bool:
        """True if the graph has exactly one connected component."""
        if not self._nodes:
            return True
        return len(self.component_of(next(iter(self._nodes)))) == len(self._nodes)

    def is_acyclic(self) -> bool:
        """True if the graph contains no cycles (it is a forest)."""
        # A forest has exactly num_nodes - num_components edges.
        return self.num_links == self.num_nodes - len(self.connected_components())

    def path(self, src: str, dst: str) -> Optional[list[str]]:
        """A shortest path (node names, inclusive) from ``src`` to ``dst``.

        BFS with insertion-order tie-breaking, so results are deterministic.
        In an acyclic graph this is *the* unique path.  Returns ``None`` when
        the nodes are disconnected.
        """
        for name in (src, dst):
            if name not in self._nodes:
                raise KeyError(f"no node {name!r}")
        if src == dst:
            return [src]
        parent: dict[str, str] = {src: src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self._adj[cur]:
                if nxt in parent:
                    continue
                parent[nxt] = cur
                if nxt == dst:
                    out = [dst]
                    while out[-1] != src:
                        out.append(parent[out[-1]])
                    out.reverse()
                    return out
                queue.append(nxt)
        return None

    def path_links(self, path: list[str]) -> list[Link]:
        """The links along a node path."""
        return [self.link(a, b) for a, b in zip(path, path[1:])]

    def path_available_bandwidth(self, src: str, dst: str) -> float:
        """Bottleneck available bandwidth on the path from src to dst (bps).

        Directionality is respected: for each hop the capacity *towards* the
        next node is used.  Returns ``inf`` for ``src == dst`` and ``0`` when
        disconnected.
        """
        if src == dst:
            return float("inf")
        p = self.path(src, dst)
        if p is None:
            return 0.0
        return min(
            self.link(a, b).available_towards(b) for a, b in zip(p, p[1:])
        )

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of link latencies along the path (``inf`` if disconnected)."""
        if src == dst:
            return 0.0
        p = self.path(src, dst)
        if p is None:
            return float("inf")
        return sum(link.latency for link in self.path_links(p))

    # -- derived views ---------------------------------------------------------
    def copy(self) -> "TopologyGraph":
        """Deep copy (nodes and links are copied; attrs shallow-copied)."""
        g = TopologyGraph()
        for node in self._nodes.values():
            g.add_node(node.copy())
        for link in self._links.values():
            copied = link.copy()
            g._links[copied.key] = copied
            g._adj[copied.u][copied.v] = copied
            g._adj[copied.v][copied.u] = copied
        return g

    def subgraph(self, names: Iterable[str]) -> "TopologyGraph":
        """The induced subgraph on ``names`` (links with both ends inside)."""
        keep = set(names)
        missing = keep - set(self._nodes)
        if missing:
            raise KeyError(f"unknown nodes: {sorted(missing)}")
        g = TopologyGraph()
        for name in self._nodes:  # preserve insertion order
            if name in keep:
                g.add_node(self._nodes[name].copy())
        for link in self._links.values():
            if link.u in keep and link.v in keep:
                copied = link.copy()
                g._links[copied.key] = copied
                g._adj[copied.u][copied.v] = copied
                g._adj[copied.v][copied.u] = copied
        return g

    def min_bandwidth_link(
        self, key: Optional[Callable[[Link], float]] = None
    ) -> Optional[Link]:
        """The link minimizing ``key`` (default: available bandwidth).

        Ties break deterministically by endpoint names.  ``None`` when the
        graph has no links.
        """
        metric = key or (lambda l: l.available)
        best: Optional[Link] = None
        best_val = float("inf")
        for link in self._links.values():
            val = metric(link)
            tie = (val, tuple(sorted((link.u, link.v))))
            if best is None or tie < (best_val, tuple(sorted((best.u, best.v)))):
                best = link
                best_val = val
        return best

    def validate(self) -> None:
        """Raise ``ValueError`` on structural inconsistencies."""
        for link in self._links.values():
            if link.u not in self._nodes or link.v not in self._nodes:
                raise ValueError(f"dangling link {link!r}")
        for name, nbrs in self._adj.items():
            for other, link in nbrs.items():
                if frozenset((name, other)) != link.key:
                    raise ValueError(f"adjacency mismatch at {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nc = len(self.compute_nodes())
        return (
            f"<TopologyGraph {self.num_nodes} nodes "
            f"({nc} compute), {self.num_links} links>"
        )
