"""Serialization of topology graphs: JSON round-trip and DOT export.

The DOT export renders graphs in the style of the paper's Figure 1 (compute
nodes as boxes, network nodes as ellipses, links labelled with
available/peak bandwidth in Mbps).
"""

from __future__ import annotations

import json
from typing import Any

from ..units import Mbps
from .graph import Link, Node, TopologyGraph

__all__ = ["to_dict", "from_dict", "to_json", "from_json", "to_dot"]

_SCHEMA_VERSION = 1


def to_dict(graph: TopologyGraph) -> dict[str, Any]:
    """A plain-dict snapshot of the graph (JSON-safe)."""
    return {
        "version": _SCHEMA_VERSION,
        "nodes": [
            {
                "name": n.name,
                "kind": n.kind,
                "load_average": n.load_average,
                "compute_capacity": n.compute_capacity,
                "attrs": n.attrs,
            }
            for n in graph.nodes()
        ],
        "links": [
            {
                "u": l.u,
                "v": l.v,
                "maxbw": l.maxbw,
                "latency": l.latency,
                "available_fwd": l.available_fwd,
                "available_rev": l.available_rev,
                "attrs": l.attrs,
            }
            for l in graph.links()
        ],
    }


def from_dict(data: dict[str, Any]) -> TopologyGraph:
    """Rebuild a graph from :func:`to_dict` output."""
    version = data.get("version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported topology schema version {version!r}")
    g = TopologyGraph()
    for nd in data["nodes"]:
        g.add_node(
            Node(
                name=nd["name"],
                kind=nd["kind"],
                load_average=nd.get("load_average", 0.0),
                compute_capacity=nd.get("compute_capacity", 1.0),
                attrs=dict(nd.get("attrs", {})),
            )
        )
    for ld in data["links"]:
        link = Link(
            u=ld["u"],
            v=ld["v"],
            maxbw=ld["maxbw"],
            latency=ld.get("latency", 0.0),
            available_fwd=ld.get("available_fwd"),
            available_rev=ld.get("available_rev"),
            attrs=dict(ld.get("attrs", {})),
        )
        if not (g.has_node(link.u) and g.has_node(link.v)):
            raise ValueError(f"link references unknown node: {link!r}")
        if g.has_link(link.u, link.v):
            raise ValueError(f"duplicate link in input: {link!r}")
        g._links[link.key] = link
        g._adj[link.u][link.v] = link
        g._adj[link.v][link.u] = link
    g.validate()
    return g


def to_json(graph: TopologyGraph, indent: int = 2) -> str:
    """Serialize the graph to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent)


def from_json(text: str) -> TopologyGraph:
    """Parse a graph from :func:`to_json` output."""
    return from_dict(json.loads(text))


def _dot_escape(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(graph: TopologyGraph, title: str = "topology") -> str:
    """Render the graph in Graphviz DOT, Figure-1 style.

    Compute nodes are boxes annotated with their load average; network nodes
    are ellipses; each edge is labelled ``available/peak Mbps``.
    """
    lines = [f"graph {_dot_escape(title)} {{", "  node [fontsize=10];"]
    for n in graph.nodes():
        if n.is_compute:
            label = f"{n.name}\\nload={n.load_average:.2f}"
            lines.append(
                f"  {_dot_escape(n.name)} [shape=box, label=\"{label}\"];"
            )
        else:
            lines.append(f"  {_dot_escape(n.name)} [shape=ellipse];")
    for l in graph.links():
        label = f"{l.available / Mbps:.0f}/{l.maxbw / Mbps:.0f} Mbps"
        lines.append(
            f"  {_dot_escape(l.u)} -- {_dot_escape(l.v)} [label=\"{label}\"];"
        )
    lines.append("}")
    return "\n".join(lines)
