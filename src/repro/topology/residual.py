"""Reservation-aware residual capacity views of topology graphs.

A multi-tenant selection service admits several applications against one
shared network (see :mod:`repro.service`).  Each admitted application
*claims* a CPU fraction on its nodes and bandwidth on the directed link
channels its traffic routes over.  This module turns a topology snapshot
plus those claims into the **residual** graph subsequent selections must
run on: what one more application would actually get.

The debit rules mirror the paper's capacity model (§3.1):

- A CPU claim of ``c`` on a node with available fraction ``cpu = 1/(1+load)``
  leaves ``cpu - c``; the residual graph encodes that as the equivalent
  load average (``load_from_cpu_fraction``), so every downstream formula
  keeps working unchanged.
- A bandwidth claim of ``b`` bps on a directed channel reduces that
  direction's available bandwidth by ``b`` (floored at zero, capacities
  untouched — claims never alter ``maxbw``).
"""

from __future__ import annotations

from typing import Mapping

from .graph import TopologyGraph, load_from_cpu_fraction

__all__ = ["DirectedEdge", "residual_graph"]

#: A directed link channel: (undirected link key, endpoint traffic flows
#: toward).  Matches the fabric's full-duplex channel identity.
DirectedEdge = tuple[frozenset, str]

#: Residual CPU fraction below which a node is considered fully claimed.
#: Keeps the equivalent load average finite for serialization/arithmetic.
_MIN_RESIDUAL_CPU = 1e-9


def residual_graph(
    graph: TopologyGraph,
    node_cpu_claims: Mapping[str, float],
    edge_bw_claims: Mapping[DirectedEdge, float],
) -> TopologyGraph:
    """A copy of ``graph`` with reserved capacity debited.

    Claims on nodes or links absent from the snapshot are ignored (the
    resource crashed or was removed; its capacity is gone anyway).  The
    input graph is never mutated.

    >>> from repro.topology import star
    >>> g = star(4)
    >>> r = residual_graph(g, {"h0": 0.5}, {})
    >>> round(r.node("h0").cpu, 3)
    0.5
    """
    g = graph.copy()
    for name, claim in node_cpu_claims.items():
        if claim <= 0.0 or not g.has_node(name):
            continue
        node = g.node(name)
        residual = max(node.cpu - claim, _MIN_RESIDUAL_CPU)
        node.load_average = load_from_cpu_fraction(residual)
    for (key, dst), claim in edge_bw_claims.items():
        if claim <= 0.0:
            continue
        ends = tuple(key)
        if len(ends) != 2 or not g.has_link(*ends):
            continue
        link = g.link(*ends)
        remaining = max(link.available_towards(dst) - claim, 0.0)
        link.set_available(remaining, direction=dst)
    return g
