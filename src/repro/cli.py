"""Command-line interface: node selection on a serialized topology.

``repro-select`` lets operators run the paper's algorithms outside Python:

.. code-block:: console

   $ repro-select topology.json -m 4                      # balanced (default)
   $ repro-select topology.json -m 4 --objective bandwidth
   $ repro-select topology.json -m 4 --min-bandwidth-mbps 50
   $ repro-select topology.json -m 4 --compute-priority 2 --format json
   $ repro-select snapshot.json -m 4 --degraded-policy conservative
   $ repro-select snapshot.json -m 4 --include-unhealthy

The topology file is the JSON produced by
:func:`repro.topology.to_json` (schema v1) — including snapshots exported
from a live monitor via :meth:`repro.remos.RemosAPI.export_snapshot`,
whose ``unmonitorable``/``stale`` marks the health flags below interpret.
Output is a human-readable summary or machine-readable JSON
(``--format json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .core import ApplicationSpec, NoFeasibleSelection, NodeSelector, Objective
from .remos import DegradedPolicy, apply_degraded_policy
from .topology import from_json, to_dot
from .units import Mbps

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Automatic node selection (PPOPP'99) on a topology JSON file.",
    )
    parser.add_argument("topology", help="path to a topology JSON file ('-' for stdin)")
    parser.add_argument("-m", "--nodes", type=int, required=True,
                        help="number of compute nodes to select")
    parser.add_argument("--objective", choices=Objective.ALL,
                        default=Objective.BALANCED,
                        help="selection criterion (default: balanced)")
    parser.add_argument("--compute-priority", type=float, default=1.0,
                        help="weighting factor favouring computation (§3.3)")
    parser.add_argument("--comm-priority", type=float, default=1.0,
                        help="weighting factor favouring communication (§3.3)")
    parser.add_argument("--min-bandwidth-mbps", type=float, default=None,
                        help="hard pairwise bandwidth floor in Mbps (§3.3)")
    parser.add_argument("--min-cpu", type=float, default=None,
                        help="hard per-node CPU-fraction floor in [0,1] (§3.3)")
    health = parser.add_mutually_exclusive_group()
    health.add_argument("--exclude-unhealthy", dest="exclude_unhealthy",
                        action="store_true", default=True,
                        help="skip nodes marked down/unmonitorable (default)")
    health.add_argument("--include-unhealthy", dest="exclude_unhealthy",
                        action="store_false",
                        help="consider every node, even ones the snapshot "
                             "marks down or unmonitorable")
    parser.add_argument("--degraded-policy",
                        choices=DegradedPolicy.ALL + ("last-good",),
                        default=None, metavar="{optimistic,last-good,conservative}",
                        help="reinterpret the snapshot's stale-measurement "
                             "marks before selecting (default: take the "
                             "snapshot as-is)")
    parser.add_argument("--format", choices=("text", "json", "dot"),
                        default="text", help="output format")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        if args.topology == "-":
            text = sys.stdin.read()
        else:
            with open(args.topology, "r", encoding="utf-8") as fh:
                text = fh.read()
        graph = from_json(text)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load topology: {exc}", file=sys.stderr)
        return 2

    try:
        spec = ApplicationSpec(
            num_nodes=args.nodes,
            objective=args.objective,
            compute_priority=args.compute_priority,
            comm_priority=args.comm_priority,
            min_bandwidth_bps=(
                args.min_bandwidth_mbps * Mbps
                if args.min_bandwidth_mbps is not None else None
            ),
            min_cpu_fraction=args.min_cpu,
        )
    except ValueError as exc:
        print(f"error: invalid specification: {exc}", file=sys.stderr)
        return 2

    if args.degraded_policy is not None:
        policy = args.degraded_policy
        if policy == "last-good":
            policy = DegradedPolicy.LAST_GOOD
        graph = apply_degraded_policy(graph, policy)

    try:
        selector = NodeSelector(graph, exclude_unhealthy=args.exclude_unhealthy)
        selection = selector.select(spec)
    except NoFeasibleSelection as exc:
        print(f"error: no feasible selection: {exc}", file=sys.stderr)
        return 1

    if args.format == "json":
        print(json.dumps({
            "nodes": selection.nodes,
            "algorithm": selection.algorithm,
            "objective": selection.objective,
            "min_cpu_fraction": selection.min_cpu_fraction,
            "min_bandwidth_bps": selection.min_bw_bps,
            "iterations": selection.iterations,
        }, indent=2))
    elif args.format == "dot":
        # Highlight the selection in a DOT rendering (Figure 4 style).
        for name in selection.nodes:
            graph.node(name).attrs["selected"] = True
        dot = to_dot(graph, title="selection")
        dot = dot.replace(
            "graph \"selection\" {",
            "graph \"selection\" {\n  // selected: " + ", ".join(selection.nodes),
        )
        for name in selection.nodes:
            dot = dot.replace(
                f'"{name}" [shape=box',
                f'"{name}" [shape=box, style=bold',
            )
        print(dot)
    else:
        print(f"selected  : {', '.join(selection.nodes)}")
        print(f"algorithm : {selection.algorithm}")
        print(f"min cpu   : {selection.min_cpu_fraction:.3f}")
        if selection.min_bw_bps == float("inf"):
            print("min bw    : unconstrained (single node)")
        else:
            print(f"min bw    : {selection.min_bw_bps / Mbps:.1f} Mbps")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
