"""Command-line interface: node selection on a serialized topology.

``repro-select`` lets operators run the paper's algorithms outside Python:

.. code-block:: console

   $ repro-select topology.json -m 4                      # balanced (default)
   $ repro-select topology.json -m 4 --objective bandwidth
   $ repro-select topology.json -m 4 --min-bandwidth-mbps 50
   $ repro-select topology.json -m 4 --compute-priority 2 --format json
   $ repro-select snapshot.json -m 4 --degraded-policy conservative
   $ repro-select snapshot.json -m 4 --include-unhealthy
   $ repro-select topology.json -m 4 --objective bandwidth --explain

The topology file is the JSON produced by
:func:`repro.topology.to_json` (schema v1) — including snapshots exported
from a live monitor via :meth:`repro.remos.RemosAPI.export_snapshot`,
whose ``unmonitorable``/``stale`` marks the health flags below interpret.
Output is a human-readable summary or machine-readable JSON
(``--format json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .core import ApplicationSpec, NoFeasibleSelection, NodeSelector, Objective
from .core.types import ExtrasKey
from .remos import DegradedPolicy, apply_degraded_policy
from .topology import from_json, to_dot
from .units import Mbps

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Automatic node selection (PPOPP'99) on a topology JSON file.",
    )
    parser.add_argument("topology", help="path to a topology JSON file ('-' for stdin)")
    parser.add_argument("-m", "--nodes", type=int, required=True,
                        help="number of compute nodes to select")
    parser.add_argument("--objective", choices=Objective.ALL,
                        default=Objective.BALANCED,
                        help="selection criterion (default: balanced)")
    parser.add_argument("--compute-priority", type=float, default=1.0,
                        help="weighting factor favouring computation (§3.3)")
    parser.add_argument("--comm-priority", type=float, default=1.0,
                        help="weighting factor favouring communication (§3.3)")
    parser.add_argument("--min-bandwidth-mbps", type=float, default=None,
                        help="hard pairwise bandwidth floor in Mbps (§3.3)")
    parser.add_argument("--min-cpu", type=float, default=None,
                        help="hard per-node CPU-fraction floor in [0,1] (§3.3)")
    health = parser.add_mutually_exclusive_group()
    health.add_argument("--exclude-unhealthy", dest="exclude_unhealthy",
                        action="store_true", default=True,
                        help="skip nodes marked down/unmonitorable (default)")
    health.add_argument("--include-unhealthy", dest="exclude_unhealthy",
                        action="store_false",
                        help="consider every node, even ones the snapshot "
                             "marks down or unmonitorable")
    parser.add_argument("--degraded-policy",
                        choices=DegradedPolicy.ALL + ("last-good",),
                        default=None, metavar="{optimistic,last-good,conservative}",
                        help="reinterpret the snapshot's stale-measurement "
                             "marks before selecting (default: take the "
                             "snapshot as-is)")
    parser.add_argument("--explain", action="store_true",
                        help="attach selection provenance: the peel sequence, "
                             "the bottleneck edge fixing the final min "
                             "bandwidth, per-node CPU, and input staleness")
    parser.add_argument("--format", choices=("text", "json", "dot"),
                        default="text", help="output format")
    return parser


def _print_explain_text(record) -> None:
    """Render an ExplainRecord under the text summary."""
    print("--- explain ---")
    print(f"procedure : {record.procedure}")
    if record.rejection:
        print(f"rejected  : {record.rejection}")
    if record.peel_sequence:
        print(f"peel      : {len(record.peel_sequence)} deletions"
              + (" (truncated)" if record.peel_truncated else ""))
        for step in record.peel_sequence:
            print(f"  - {step.u}--{step.v}  "
                  f"available {step.available_bps / Mbps:.1f} Mbps")
    if record.bottleneck is not None:
        b = record.bottleneck
        print(f"bottleneck: {b.u}--{b.v} (towards {b.towards})  "
              f"{b.available_bps / Mbps:.1f} Mbps  "
              f"for pair {b.pair[0]}<->{b.pair[1]}")
    if record.node_cpu:
        cpus = ", ".join(
            f"{name}={cpu:.2f}" for name, cpu in sorted(record.node_cpu.items())
        )
        print(f"node cpu  : {cpus}")
    if record.snapshot_epoch is not None:
        print(f"epoch     : {record.snapshot_epoch}")
    if record.staleness:
        parts = []
        ages = [
            age
            for table in ("node_age_s", "link_age_s")
            for age in record.staleness.get(table, {}).values()
            if age is not None
        ]
        if record.staleness.get("snapshot_age_s") is not None:
            ages.append(record.staleness["snapshot_age_s"])
        if ages:
            parts.append(f"max input age {max(ages):.1f}s")
        for key in ("stale_links", "unmonitorable_nodes"):
            val = record.staleness.get(key)
            if val:
                parts.append(f"{key.replace('_', ' ')}: {', '.join(val)}")
        if parts:
            print(f"staleness : {'; '.join(parts)}")


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        if args.topology == "-":
            text = sys.stdin.read()
        else:
            with open(args.topology, "r", encoding="utf-8") as fh:
                text = fh.read()
        graph = from_json(text)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load topology: {exc}", file=sys.stderr)
        return 2

    try:
        spec = ApplicationSpec(
            num_nodes=args.nodes,
            objective=args.objective,
            compute_priority=args.compute_priority,
            comm_priority=args.comm_priority,
            min_bandwidth_bps=(
                args.min_bandwidth_mbps * Mbps
                if args.min_bandwidth_mbps is not None else None
            ),
            min_cpu_fraction=args.min_cpu,
        )
    except ValueError as exc:
        print(f"error: invalid specification: {exc}", file=sys.stderr)
        return 2

    if args.degraded_policy is not None:
        policy = args.degraded_policy
        if policy == "last-good":
            policy = DegradedPolicy.LAST_GOOD
        graph = apply_degraded_policy(graph, policy)

    try:
        selector = NodeSelector(graph, exclude_unhealthy=args.exclude_unhealthy)
        selection = selector.select(spec, explain=args.explain)
    except NoFeasibleSelection as exc:
        print(f"error: no feasible selection: {exc}", file=sys.stderr)
        if args.explain:
            from .obs.explain import explain_rejection
            record = explain_rejection(str(exc), graph=graph)
            if args.format == "json":
                print(json.dumps({"explain": record.to_dict()}, indent=2))
            else:
                _print_explain_text(record)
        return 1
    explain_record = selection.extras.get(ExtrasKey.EXPLAIN)

    if args.format == "json":
        out = {
            "nodes": selection.nodes,
            "algorithm": selection.algorithm,
            "objective": selection.objective,
            "min_cpu_fraction": selection.min_cpu_fraction,
            "min_bandwidth_bps": selection.min_bw_bps,
            "iterations": selection.iterations,
        }
        if explain_record is not None:
            out["explain"] = explain_record.to_dict()
        print(json.dumps(out, indent=2))
    elif args.format == "dot":
        # Highlight the selection in a DOT rendering (Figure 4 style).
        for name in selection.nodes:
            graph.node(name).attrs["selected"] = True
        dot = to_dot(graph, title="selection")
        dot = dot.replace(
            "graph \"selection\" {",
            "graph \"selection\" {\n  // selected: " + ", ".join(selection.nodes),
        )
        for name in selection.nodes:
            dot = dot.replace(
                f'"{name}" [shape=box',
                f'"{name}" [shape=box, style=bold',
            )
        print(dot)
    else:
        print(f"selected  : {', '.join(selection.nodes)}")
        print(f"algorithm : {selection.algorithm}")
        print(f"min cpu   : {selection.min_cpu_fraction:.3f}")
        if selection.min_bw_bps == float("inf"):
            print("min bw    : unconstrained (single node)")
        else:
            print(f"min bw    : {selection.min_bw_bps / Mbps:.1f} Mbps")
        if explain_record is not None:
            _print_explain_text(explain_record)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
