"""Trial runner and experiment campaigns (paper §4).

One *trial* = build a fresh simulated testbed, run the background
generators through a warmup, select nodes under the scenario's policy, run
the application, and record its execution time.  A *campaign* averages many
seeded trials — the stand-in for the paper's "large number of measurements
... spanning several hours" on the physical testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baselines import select_random, select_static
from ..core.selector import NodeSelector
from ..core.types import Selection
from ..des.simulator import Simulator
from ..faults.injector import FaultInjector
from ..network.cluster import Cluster
from ..network.host import HostDownError
from ..remos.api import RemosAPI
from ..remos.collector import Collector
from ..workloads.load import LoadGenerator
from ..workloads.traffic import TrafficGenerator
from .cmu import cmu_testbed
from .scenario import Policy, Scenario

__all__ = ["TrialResult", "CampaignResult", "run_trial", "run_campaign"]


@dataclass
class TrialResult:
    """Outcome of one trial.

    ``completed`` is False when the application died mid-run (it was
    placed on a node that crashed, or its placement crashed under it);
    ``elapsed_seconds`` is ``inf`` in that case.
    """

    scenario_label: str
    seed: int
    elapsed_seconds: float
    selection: Selection
    warmup_end: float
    completed: bool = True


@dataclass
class CampaignResult:
    """Aggregate over a campaign's trials."""

    scenario_label: str
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def times(self) -> np.ndarray:
        """Elapsed times of the *completed* trials."""
        return np.array(
            [t.elapsed_seconds for t in self.trials if t.completed]
        )

    @property
    def failures(self) -> int:
        """Trials whose application did not complete (crashed placement)."""
        return sum(1 for t in self.trials if not t.completed)

    @property
    def mean(self) -> float:
        times = self.times
        return float(times.mean()) if len(times) else float("nan")

    @property
    def std(self) -> float:
        times = self.times
        return float(times.std(ddof=1)) if len(times) > 1 else 0.0

    @property
    def n(self) -> int:
        return len(self.trials)


def _select(
    scenario: Scenario,
    spec,
    api: RemosAPI,
    cluster: Cluster,
    rng: np.random.Generator,
) -> Selection:
    """Apply the scenario's selection policy."""
    policy = scenario.policy
    if policy == Policy.RANDOM:
        return select_random(cluster.graph, spec.total_nodes, rng=rng)
    if policy == Policy.STATIC:
        return select_static(cluster.graph, spec.total_nodes)
    if policy == Policy.ORACLE:
        return NodeSelector(cluster.snapshot()).select(spec)
    if policy == Policy.COMPUTE:
        from dataclasses import replace
        return NodeSelector(api).select(replace(spec, objective="compute"))
    if policy == Policy.BANDWIDTH:
        from dataclasses import replace
        return NodeSelector(api).select(replace(spec, objective="bandwidth"))
    # Policy.AUTO: the paper's framework — Remos topology + balanced alg.
    return NodeSelector(api).select(spec)


def run_trial(scenario: Scenario, seed: int) -> TrialResult:
    """Execute one seeded trial of ``scenario`` on a fresh testbed.

    With a fault plan active the application may be placed on a node that
    is (or goes) down; such trials are recorded as not completed instead
    of propagating — the failure *is* the measurement.
    """
    seq = np.random.SeedSequence(seed)
    load_rng, traffic_rng, select_rng, fault_rng = (
        np.random.default_rng(s) for s in seq.spawn(4)
    )

    sim = Simulator()
    graph = cmu_testbed()
    cluster = Cluster(sim, graph, base_capacity=1.0, load_tau=60.0)
    collector = Collector(cluster, period=scenario.remos_period)
    api = RemosAPI(collector, degraded=scenario.degraded)

    if scenario.load_on:
        LoadGenerator(cluster, load_rng, config=scenario.load_config)
    if scenario.traffic_on:
        TrafficGenerator(cluster, traffic_rng, config=scenario.traffic_config)
    if scenario.fault_plan is not None:
        injector = FaultInjector(cluster, collector)
        injector.schedule(scenario.fault_plan(cluster, fault_rng))

    if scenario.warmup > 0:
        sim.run(until=scenario.warmup)

    app = scenario.app_factory()
    selection = _select(scenario, app.spec(), api, cluster, select_rng)
    try:
        done = app.launch(cluster, selection.nodes)
        elapsed = sim.run(until=done)
        completed = True
    except (HostDownError, InterruptedError, ConnectionError):
        elapsed = float("inf")
        completed = False

    return TrialResult(
        scenario_label=scenario.label,
        seed=seed,
        elapsed_seconds=elapsed,
        selection=selection,
        warmup_end=scenario.warmup,
        completed=completed,
    )


def run_campaign(
    scenario: Scenario,
    trials: int,
    base_seed: int = 0,
) -> CampaignResult:
    """Run ``trials`` independent seeded trials and aggregate them.

    Seeds are spawned from ``base_seed`` via ``SeedSequence`` so campaigns
    are reproducible and trials statistically independent.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    result = CampaignResult(scenario_label=scenario.label)
    children = np.random.SeedSequence(base_seed).spawn(trials)
    for child in children:
        seed = int(child.generate_state(1)[0])
        result.trials.append(run_trial(scenario, seed))
    return result
