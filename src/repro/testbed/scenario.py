"""Experiment scenario configuration (paper §4).

A :class:`Scenario` describes one experimental cell: which application,
which selection policy, and which background generators are active.  The
defaults reproduce the paper's setup — load on *every* node, traffic
between random node pairs, parameters set for a data/compute-intensive
departmental cluster rather than an interactive one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..apps.base import Application
from ..faults.injector import Fault
from ..remos.api import DegradedPolicy
from ..units import MB
from ..workloads.distributions import HarcholBalterLifetime, LogNormal
from ..workloads.load import LoadGeneratorConfig
from ..workloads.traffic import TrafficGeneratorConfig

__all__ = ["Policy", "Scenario", "default_load_config", "default_traffic_config"]


class Policy:
    """Node-selection policies compared in the evaluation."""

    RANDOM = "random"       # the paper's control arm
    STATIC = "static"       # peak-capacity ranking (≈ random here, §4.3)
    AUTO = "auto"           # the paper's framework: Remos + balanced
    COMPUTE = "compute"     # ablation: CPU-only selection
    BANDWIDTH = "bandwidth"  # ablation: bandwidth-only selection
    ORACLE = "oracle"       # ablation: balanced on ground truth (no staleness)

    ALL = (RANDOM, STATIC, AUTO, COMPUTE, BANDWIDTH, ORACLE)


def default_load_config() -> LoadGeneratorConfig:
    """§4.2 load model, tuned for a compute-intensive cluster.

    Poisson arrivals at 0.10 jobs/s/node; lifetimes a 60/40 exponential
    (mean 0.4 s) + Pareto(α=1.0, xm=2 s, cap 200 s) mix — offered load
    ≈ 0.38 competing jobs per node, with the heavy tail parking the
    occasional long job that badly overloads one machine.  Calibrated so
    the random-selection slowdowns of Table 1 land near the paper's
    (+136% FFT under load vs the paper's +135%).
    """
    return LoadGeneratorConfig(
        arrival_rate=0.10,
        lifetime=HarcholBalterLifetime(
            exp_mean=0.4,
            p_heavy=0.4,
            pareto_alpha=1.0,
            pareto_xm=2.0,
            pareto_cap=200.0,
        ),
    )


def default_traffic_config() -> TrafficGeneratorConfig:
    """§4.2 traffic model: Poisson arrivals of LogNormal bulk messages.

    1.5 messages/s across the testbed with mean 24 MiB (cv 1.5) — large
    high-speed data transfers that keep a changing subset of links (and
    especially the inter-router trunks, which ~half of random pairs cross)
    busy.  Calibrated so random-selection traffic slowdowns match Table 1
    (+72% FFT vs the paper's +67%; +86% Airshed vs +88%).
    """
    return TrafficGeneratorConfig(
        message_rate=1.5,
        message_size=LogNormal.from_mean_cv(mean=24 * MB, cv=1.5),
    )


@dataclass
class Scenario:
    """One experimental cell.

    Attributes
    ----------
    app_factory:
        Builds a fresh :class:`Application` per trial.
    policy:
        Selection policy (:class:`Policy`).
    load_on / traffic_on:
        Whether the background generators run.
    warmup:
        Seconds of background activity before selection + launch, letting
        generators and the Remos collector reach steady state.
    remos_period:
        Collector poll period (s).
    load_config / traffic_config:
        Generator parameters (paper defaults if None).
    fault_plan:
        Optional factory ``(cluster, rng) -> list[Fault]`` producing the
        faults injected into each trial (None: fault-free, the default).
    degraded:
        Remos degraded-mode policy used when answering from stale
        measurements (:class:`repro.remos.DegradedPolicy`).
    label:
        Optional display name for tables.
    """

    app_factory: Callable[[], Application]
    policy: str = Policy.AUTO
    load_on: bool = False
    traffic_on: bool = False
    warmup: float = 180.0
    remos_period: float = 5.0
    load_config: Optional[LoadGeneratorConfig] = None
    traffic_config: Optional[TrafficGeneratorConfig] = None
    fault_plan: Optional[Callable[..., Sequence[Fault]]] = None
    degraded: str = DegradedPolicy.LAST_GOOD
    label: str = ""

    def __post_init__(self) -> None:
        if self.policy not in Policy.ALL:
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.warmup < 0:
            raise ValueError("warmup cannot be negative")
        if self.degraded not in DegradedPolicy.ALL:
            raise ValueError(f"unknown degraded policy {self.degraded!r}")
        if self.load_config is None:
            self.load_config = default_load_config()
        if self.traffic_config is None:
            self.traffic_config = default_traffic_config()
        if not self.label:
            gens = {
                (False, False): "unloaded",
                (True, False): "load",
                (False, True): "traffic",
                (True, True): "load+traffic",
            }[(self.load_on, self.traffic_on)]
            if self.fault_plan is not None:
                gens += "+faults"
            self.label = f"{self.policy}/{gens}"
