"""The CMU testbed model and the paper's experiment harness (§4).

:func:`cmu_testbed` builds the Figure 4 topology; :class:`Scenario` /
:func:`run_trial` / :func:`run_campaign` reproduce the evaluation
methodology (warmed-up generators, policy-selected placement, averaged
trials); :func:`generate_table1` regenerates Table 1.
"""

from .cmu import (
    ATM_BW,
    ETHERNET_BW,
    HOSTS,
    HOSTS_BY_ROUTER,
    ROUTERS,
    cmu_testbed,
)
from .experiment import CampaignResult, TrialResult, run_campaign, run_trial
from .multiapp import MultiTenantResult, TenantRequest, run_multi_tenant
from .scenario import (
    Policy,
    Scenario,
    default_load_config,
    default_traffic_config,
)
from .table1 import APPLICATIONS, Table1Result, Table1Row, generate_table1

__all__ = [
    "APPLICATIONS",
    "ATM_BW",
    "CampaignResult",
    "ETHERNET_BW",
    "HOSTS",
    "HOSTS_BY_ROUTER",
    "MultiTenantResult",
    "Policy",
    "ROUTERS",
    "Scenario",
    "Table1Result",
    "Table1Row",
    "TenantRequest",
    "TrialResult",
    "cmu_testbed",
    "default_load_config",
    "default_traffic_config",
    "generate_table1",
    "run_campaign",
    "run_multi_tenant",
    "run_trial",
]
