"""Regeneration of the paper's Table 1.

For each application (FFT, Airshed, MRI) and each background condition
(processor load / network traffic / both), run campaigns under random and
automatic node selection, plus the unloaded reference, and print the same
rows the paper reports — execution times, the percent change of automatic
vs random, and the §4.3 derived slowdown-vs-unloaded comparison that yields
the "increase in execution time ... approximately cut in half" headline.

Run as a script (``python -m repro.testbed.table1``) or via the
``repro-table1`` console entry point; the benchmark suite drives the same
code through :func:`generate_table1`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..analysis.stats import percent_change, slowdown_percent
from ..analysis.tables import format_percent, format_table
from ..apps import MRI, Airshed, FFT2D, Application
from ..faults.scenario import random_fault_plan
from ..remos.api import DegradedPolicy
from .experiment import CampaignResult, run_campaign
from .scenario import Policy, Scenario

__all__ = [
    "Table1Row",
    "Table1Result",
    "default_fault_plan",
    "generate_table1",
    "main",
    "APPLICATIONS",
]

#: The paper's application suite, with node counts from Table 1.
APPLICATIONS: dict[str, Callable[[], Application]] = {
    "FFT (1K)": FFT2D.paper_config,
    "Airshed": Airshed.paper_config,
    "MRI": MRI.paper_config,
}

#: Background-generator conditions, in the paper's column order.
CONDITIONS = (
    ("Processor Load", True, False),
    ("Network Traffic", False, True),
    ("Load+Traffic", True, True),
)


@dataclass
class Table1Row:
    """One application's worth of Table 1 measurements."""

    app_name: str
    num_nodes: int
    random: dict[str, CampaignResult] = field(default_factory=dict)
    auto: dict[str, CampaignResult] = field(default_factory=dict)
    reference: Optional[CampaignResult] = None

    def change_percent(self, condition: str) -> float:
        """Automatic vs random percent change (negative = improvement)."""
        return percent_change(
            self.auto[condition].mean, self.random[condition].mean
        )

    def slowdown(self, condition: str, policy: str) -> float:
        """Percent increase over the unloaded reference (§4.3)."""
        res = self.random if policy == Policy.RANDOM else self.auto
        return slowdown_percent(res[condition].mean, self.reference.mean)


@dataclass
class Table1Result:
    """All rows plus shared campaign metadata."""

    rows: list[Table1Row]
    trials: int
    base_seed: int

    def headline_ratio(self, condition: str = "Load+Traffic") -> float:
        """Mean over apps of (auto slowdown / random slowdown).

        The paper's claim: "the increase in execution time due to traffic
        and/or load is approximately cut in half with automatic node
        selection" — i.e. this ratio ≈ 0.5.
        """
        ratios = []
        for row in self.rows:
            rnd = row.slowdown(condition, Policy.RANDOM)
            auto = row.slowdown(condition, Policy.AUTO)
            if rnd > 0:
                ratios.append(auto / rnd)
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        """The Table-1-style report."""
        headers = [
            "Application", "Nodes",
            "Rand Load", "Rand Traffic", "Rand L+T",
            "Auto Load", "Auto Traffic", "Auto L+T",
            "Unloaded",
        ]
        body = []
        for row in self.rows:
            body.append([
                row.app_name,
                row.num_nodes,
                f"{row.random['Processor Load'].mean:.1f}",
                f"{row.random['Network Traffic'].mean:.1f}",
                f"{row.random['Load+Traffic'].mean:.1f}",
                f"{row.auto['Processor Load'].mean:.1f} "
                f"({format_percent(row.change_percent('Processor Load'))})",
                f"{row.auto['Network Traffic'].mean:.1f} "
                f"({format_percent(row.change_percent('Network Traffic'))})",
                f"{row.auto['Load+Traffic'].mean:.1f} "
                f"({format_percent(row.change_percent('Load+Traffic'))})",
                f"{row.reference.mean:.1f}",
            ])
        out = [format_table(headers, body, title="Table 1 (reproduced)")]

        slow_headers = ["Application", "Condition", "Random +%", "Auto +%", "Ratio"]
        slow_rows = []
        for row in self.rows:
            for condition, *_ in CONDITIONS:
                rnd = row.slowdown(condition, Policy.RANDOM)
                auto = row.slowdown(condition, Policy.AUTO)
                ratio = auto / rnd if rnd > 0 else float("nan")
                slow_rows.append([
                    row.app_name, condition,
                    format_percent(rnd, signed=False),
                    format_percent(auto, signed=False),
                    f"{ratio:.2f}",
                ])
        out.append("")
        out.append(
            format_table(
                slow_headers, slow_rows,
                title="Slowdown vs unloaded reference (§4.3 derivation)",
            )
        )
        out.append("")
        out.append(
            f"Headline (load+traffic slowdown ratio auto/random, mean over "
            f"apps): {self.headline_ratio():.2f}  (paper: ~0.5)"
        )
        return "\n".join(out)


def default_fault_plan(cluster, rng):
    """The ``--faults`` fault mix: crashes, flaps, outages and resets.

    Faults open during warmup (so selection already sees a degraded
    network) and keep landing while the application runs.
    """
    return random_fault_plan(cluster, rng, horizon=360.0, start=60.0)


def generate_table1(
    trials: int = 10,
    base_seed: int = 2026,
    apps: Optional[dict[str, Callable[[], Application]]] = None,
    faults: bool = False,
    degraded: str = DegradedPolicy.LAST_GOOD,
) -> Table1Result:
    """Run the full Table 1 experiment matrix.

    ``trials`` campaigns per cell; 2 policies × 3 conditions + 1 reference
    per application.  With the default 10 trials this is 63 simulated runs.
    With ``faults`` on, every measured cell additionally runs under
    :func:`default_fault_plan` (the unloaded reference stays fault-free so
    slowdowns keep their baseline); crashed-placement trials count as
    failures, not times.
    """
    rows = []
    plan = default_fault_plan if faults else None
    for app_name, factory in (apps or APPLICATIONS).items():
        row = Table1Row(app_name=app_name, num_nodes=factory().num_nodes)
        for condition, load_on, traffic_on in CONDITIONS:
            for policy, bucket in (
                (Policy.RANDOM, row.random),
                (Policy.AUTO, row.auto),
            ):
                scenario = Scenario(
                    app_factory=factory,
                    policy=policy,
                    load_on=load_on,
                    traffic_on=traffic_on,
                    fault_plan=plan,
                    degraded=degraded,
                    label=f"{app_name}/{policy}/{condition}",
                )
                bucket[condition] = run_campaign(
                    scenario, trials=trials, base_seed=base_seed
                )
        reference = Scenario(
            app_factory=factory,
            policy=Policy.AUTO,
            load_on=False,
            traffic_on=False,
            warmup=60.0,
            label=f"{app_name}/reference",
        )
        # The unloaded testbed is deterministic: 3 trials suffice.
        row.reference = run_campaign(
            reference, trials=min(trials, 3), base_seed=base_seed
        )
        rows.append(row)
    return Table1Result(rows=rows, trials=trials, base_seed=base_seed)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: regenerate and print Table 1."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10,
                        help="campaign trials per cell (default 10)")
    parser.add_argument("--seed", type=int, default=2026,
                        help="base seed (default 2026)")
    parser.add_argument("--faults", action="store_true",
                        help="inject a random fault mix (node crashes, link "
                             "flaps, agent outages, counter resets) into "
                             "every measured cell")
    parser.add_argument("--degraded", choices=DegradedPolicy.ALL,
                        default=DegradedPolicy.LAST_GOOD,
                        help="Remos degraded-mode policy for stale answers "
                             "(default: last-known-good)")
    args = parser.parse_args(argv)
    result = generate_table1(
        trials=args.trials,
        base_seed=args.seed,
        faults=args.faults,
        degraded=args.degraded,
    )
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
