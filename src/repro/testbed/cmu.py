"""The CMU networking testbed of the paper's Figure 4.

18 DEC Alpha compute nodes (``m-1`` … ``m-18``) attached to three Cisco
routers (``panama``, ``suez``, ``gibraltar``).  All links are 100 Mbps
Ethernet except the ``gibraltar``–``suez`` link, a 155 Mbps ATM link.

The paper's figure does not enumerate which hosts sit on which router; we
assume contiguous blocks of six (``m-1..m-6`` on panama, ``m-7..m-12`` on
suez, ``m-13..m-18`` on gibraltar) with the routers in a ``panama — suez —
gibraltar`` chain.  This preserves every property the experiments use: three
LAN segments, a distinguished faster trunk, and the Figure 4 scenario where
a bulk stream from ``m-16`` to ``m-18`` congests links that automatic
selection then avoids.
"""

from __future__ import annotations

from ..topology.graph import TopologyGraph
from ..units import Mbps

__all__ = [
    "ROUTERS",
    "HOSTS",
    "HOSTS_BY_ROUTER",
    "ETHERNET_BW",
    "ATM_BW",
    "cmu_testbed",
]

#: Router names, in chain order.
ROUTERS = ("panama", "suez", "gibraltar")

#: All compute node names, m-1 … m-18.
HOSTS = tuple(f"m-{i}" for i in range(1, 19))

#: Host attachment (assumed contiguous blocks of six; see module docstring).
HOSTS_BY_ROUTER = {
    "panama": tuple(f"m-{i}" for i in range(1, 7)),
    "suez": tuple(f"m-{i}" for i in range(7, 13)),
    "gibraltar": tuple(f"m-{i}" for i in range(13, 19)),
}

#: 100 Mbps switched Ethernet.
ETHERNET_BW = 100 * Mbps
#: The 155 Mbps ATM link between gibraltar and suez.
ATM_BW = 155 * Mbps
#: LAN-scale one-hop latency.
LINK_LATENCY = 100e-6


def cmu_testbed() -> TopologyGraph:
    """Build the Figure 4 testbed topology.

    All compute nodes are idle DEC Alphas of equal capacity; availability
    annotations start at the peaks (the live values come from the simulated
    cluster / Remos, not from this static description).
    """
    g = TopologyGraph()
    for router in ROUTERS:
        g.add_network(router, vendor="cisco")
    g.add_link("panama", "suez", ETHERNET_BW, LINK_LATENCY, medium="ethernet")
    g.add_link("suez", "gibraltar", ATM_BW, LINK_LATENCY, medium="atm")
    for router, hosts in HOSTS_BY_ROUTER.items():
        for host in hosts:
            g.add_compute(host, arch="alpha")
            g.add_link(host, router, ETHERNET_BW, LINK_LATENCY, medium="ethernet")
    return g
