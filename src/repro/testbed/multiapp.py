"""Multi-application scenarios: concurrent tenants on the CMU testbed.

The Table 1 harness runs one application per trial; this module runs
*several* against one live network through the multi-tenant selection
service (:mod:`repro.service`), which is exactly the situation the
service exists for — concurrent selections must be debited against
shared capacity or every tenant lands on the same "best" nodes.

:func:`run_multi_tenant` builds the standard rig (cluster + collector +
Remos + fault injector), warms the monitor up, submits a stream of tenant
requests at their arrival times, and reports every grant plus the
service's metrics.  The ``naive`` arm answers the same stream from a
plain :class:`~repro.core.NodeSelector` with no ledger — the control
that shows the overlap the service removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.selector import NodeSelector
from ..core.spec import ApplicationSpec
from ..core.types import NoFeasibleSelection
from ..des.simulator import Simulator
from ..faults.injector import Fault, FaultInjector
from ..network.cluster import Cluster
from ..obs import MetricsRegistry, Tracer
from ..remos.api import RemosAPI
from ..remos.collector import Collector
from ..service.admission import Priority
from ..service.api import PlacementBackend
from ..service.service import Grant, SelectionService
from ..service.sharding import ShardRouter
from .cmu import cmu_testbed

__all__ = ["TenantRequest", "MultiTenantResult", "run_multi_tenant"]


@dataclass(frozen=True)
class TenantRequest:
    """One tenant's arrival in a multi-application scenario."""

    app_id: str
    at: float
    num_nodes: int = 4
    cpu_fraction: float = 0.25
    bw_bps: float = 0.0
    priority: str = Priority.SILVER
    #: Simulated seconds the tenant holds its lease (None: forever).
    hold_s: Optional[float] = None
    #: Minimum shards (fault domains) the placement must span — only
    #: meaningful in the sharded arm (``run_multi_tenant(shards=K)``).
    spread: int = 1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"arrival time cannot be negative: {self.at}")
        if self.hold_s is not None and self.hold_s <= 0:
            raise ValueError(f"hold_s must be positive: {self.hold_s}")
        if self.spread < 1:
            raise ValueError(f"spread must be >= 1: {self.spread}")


@dataclass
class MultiTenantResult:
    """Grants, the naive control's placements, and service metrics."""

    grants: dict[str, Grant] = field(default_factory=dict)
    #: What a ledger-less selector would have picked per tenant (None when
    #: even the naive arm found nothing feasible).
    naive_nodes: dict[str, Optional[list[str]]] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    fault_log: list[tuple[float, str, str]] = field(default_factory=list)
    #: Observability artifacts written by the campaign (``trace_out`` /
    #: ``metrics_out``): path -> span count / exposition byte count.
    artifacts: dict[str, int] = field(default_factory=dict)

    @property
    def admitted(self) -> list[str]:
        return sorted(
            a for a, g in self.grants.items()
            if g.selection is not None and g.admitted
        )

    def overlapping_tenants(self) -> list[tuple[str, str]]:
        """Pairs of admitted tenants sharing a node (service arm)."""
        apps = self.admitted
        out = []
        for i, a in enumerate(apps):
            for b in apps[i + 1:]:
                sa = set(self.grants[a].selection.nodes)
                sb = set(self.grants[b].selection.nodes)
                if sa & sb:
                    out.append((a, b))
        return out

    def naive_overlaps(self) -> list[tuple[str, str]]:
        """Pairs of tenants the naive control co-located on some node."""
        apps = sorted(a for a, n in self.naive_nodes.items() if n)
        out = []
        for i, a in enumerate(apps):
            for b in apps[i + 1:]:
                if set(self.naive_nodes[a]) & set(self.naive_nodes[b]):
                    out.append((a, b))
        return out


def run_multi_tenant(
    tenants: Sequence[TenantRequest],
    *,
    warmup: float = 60.0,
    horizon: float = 300.0,
    remos_period: float = 5.0,
    snapshot_ttl: float = 5.0,
    lease_s: float = 120.0,
    queue_limit: int = 8,
    fault_plan: Sequence[Fault] = (),
    graph=None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    preempt: bool = False,
    preempt_grace_s: float = 0.0,
    shards: int = 1,
    reactive: bool = False,
) -> MultiTenantResult:
    """Run a multi-tenant stream against one simulated network.

    Builds a fresh rig (``graph`` defaults to the CMU testbed), warms the
    collector for ``warmup`` seconds, schedules every tenant's request at
    ``warmup + tenant.at`` (and its release after ``hold_s``), injects
    ``fault_plan``, and runs to ``warmup + horizon``.

    ``trace_out`` records every request's trace tree (plus collector
    sweeps and fault events) as JSONL; ``metrics_out`` writes the final
    Prometheus exposition of the whole rig — collector and service share
    one registry.  Written paths land in ``result.artifacts``.

    ``preempt=True`` runs the preemption-enabled arm: gold tenants that
    arrive infeasible reclaim bronze/silver leases instead of queueing
    behind them (``preempt_grace_s`` gives victims a wind-down; the
    campaign's metrics then carry ``preempted`` counts).

    ``shards=K`` (K > 1) runs the sharded arm: a
    :class:`~repro.service.ShardRouter` partitions the live topology and
    fronts one service per shard; tenants with ``spread > 1`` are placed
    across shards through the two-phase trunk grant.  The sharded arm
    never queues, and fault injection / preemption are single-service
    features — combining them raises ``ValueError``.

    ``reactive=True`` enables the push-driven pipeline on the single
    service: the collector's staleness events invalidate the snapshot
    cache the moment they fire, and leases on a degrading host are
    proactively migrated through the
    :class:`~repro.core.MigrationAdvisor` before crash eviction.

    Both arms are driven purely through the
    :class:`~repro.service.PlacementBackend` protocol — anything
    implementing it can stand in for the service here.
    """
    if shards > 1 and (fault_plan or preempt or reactive):
        raise ValueError(
            "shards > 1 does not compose with fault_plan, preempt, or "
            "reactive; run those arms against the single service"
        )
    sim = Simulator()
    tracer = Tracer() if trace_out else None
    registry = MetricsRegistry() if metrics_out else None
    cluster = Cluster(sim, graph if graph is not None else cmu_testbed())
    collector = Collector(
        cluster, period=remos_period, stale_after=3,
        tracer=tracer, registry=registry,
    )
    api = RemosAPI(collector, tracer=tracer)
    injector = FaultInjector(cluster, collector, tracer=tracer)
    service: PlacementBackend
    if shards > 1:
        service = ShardRouter(
            api,
            shards=shards,
            snapshot_ttl=snapshot_ttl,
            lease_s=lease_s,
            tracer=tracer,
            registry=registry,
        )
    else:
        service = SelectionService(
            api,
            snapshot_ttl=snapshot_ttl,
            lease_s=lease_s,
            queue_limit=queue_limit,
            tracer=tracer,
            registry=registry,
            preempt=preempt,
            preempt_grace_s=preempt_grace_s,
        )
        service.attach_injector(injector)
        if reactive:
            service.enable_push(collector)
    naive = NodeSelector(api)
    result = MultiTenantResult()

    def submit(tenant: TenantRequest) -> None:
        spec = ApplicationSpec(num_nodes=tenant.num_nodes)
        try:
            result.naive_nodes[tenant.app_id] = naive.select(spec).nodes
        except NoFeasibleSelection:
            result.naive_nodes[tenant.app_id] = None
        kwargs = dict(
            cpu_fraction=tenant.cpu_fraction,
            bw_bps=tenant.bw_bps,
            priority=tenant.priority,
        )
        if shards > 1:
            kwargs["spread"] = tenant.spread
        grant = service.request(tenant.app_id, spec, **kwargs)
        result.grants[tenant.app_id] = grant
        if tenant.hold_s is not None:
            sim.call_in(tenant.hold_s, lambda: _release(tenant.app_id))

    def _release(app_id: str) -> None:
        try:
            service.release(app_id)
        except KeyError:
            pass  # already expired, evicted, or never admitted

    for tenant in tenants:
        sim.call_at(warmup + tenant.at, lambda t=tenant: submit(t))
    if fault_plan:
        injector.schedule(fault_plan)
    sim.run(until=warmup + horizon)

    # Standing outcomes supersede arrival-time grants (queued tenants may
    # have been admitted later, crashed ones evicted).
    for app_id in list(result.grants):
        result.grants[app_id] = service.status(app_id)
    result.metrics = service.metrics_snapshot()
    result.fault_log = list(injector.log)
    if tracer is not None:
        result.artifacts[trace_out] = tracer.write_jsonl(trace_out)
    if metrics_out is not None:
        exposition = service.registry.expose_text()
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(exposition)
        result.artifacts[metrics_out] = len(exposition)
    return result
