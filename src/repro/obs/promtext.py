"""A dependency-free Prometheus text-exposition (v0.0.4) validator.

The container ships no ``prometheus_client``, so CI and the test suite
validate ``MetricsRegistry.expose_text()`` output with this parser
instead: it checks everything a scraper would choke on — line grammar,
metric/label name syntax, label quoting and escapes, value syntax
(including ``+Inf``/``-Inf``/``NaN``), ``TYPE`` declared at most once
and before any sample of its family, histogram series shape
(``_bucket``/``_sum``/``_count`` only, a mandatory ``le="+Inf"`` bucket,
cumulative bucket counts monotone in ``le``, ``_count`` equal to the
``+Inf`` bucket), duplicate series, and the trailing newline the format
requires.

Also runnable as a module for CI artifact checks::

    python -m repro.obs.promtext metrics.prom
"""

from __future__ import annotations

import re
import sys
from typing import Optional

__all__ = ["main", "parse_sample_line", "validate"]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Suffixes a histogram family's sample names may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> Optional[float]:
    """A sample value, or None when malformed."""
    t = text.strip()
    if t in ("+Inf", "Inf"):
        return float("inf")
    if t == "-Inf":
        return float("-inf")
    if t == "NaN":
        return float("nan")
    try:
        return float(t)
    except ValueError:
        return None


def _parse_labels(body: str) -> Optional[dict]:
    """The inside of ``{...}``; None when malformed."""
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        # label name
        j = i
        while j < n and body[j] not in "={,":
            j += 1
        name = body[i:j].strip()
        if j >= n or body[j] != "=" or not _LABEL_NAME_RE.match(name):
            return None
        j += 1
        if j >= n or body[j] != '"':
            return None
        j += 1
        value_chars: list[str] = []
        while j < n and body[j] != '"':
            if body[j] == "\\":
                if j + 1 >= n:
                    return None
                esc = body[j + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    return None
                j += 2
            else:
                value_chars.append(body[j])
                j += 1
        if j >= n:
            return None  # unterminated quote
        if name in labels:
            return None  # duplicate label
        labels[name] = "".join(value_chars)
        j += 1  # past closing quote
        if j < n:
            if body[j] != ",":
                return None
            j += 1
        i = j
    return labels


def parse_sample_line(
    line: str,
) -> Optional[tuple[str, dict, float, Optional[float]]]:
    """``(name, labels, value, timestamp)`` for one sample line, or None.

    Timestamps are optional per the format; escaped quotes inside label
    values are handled.
    """
    line = line.strip()
    brace = line.find("{")
    if brace >= 0:
        name = line[:brace]
        # Find the matching close brace, respecting quoted strings.
        i, n = brace + 1, len(line)
        in_quote = False
        while i < n:
            c = line[i]
            if in_quote:
                if c == "\\":
                    i += 1
                elif c == '"':
                    in_quote = False
            elif c == '"':
                in_quote = True
            elif c == "}":
                break
            i += 1
        if i >= n:
            return None
        labels = _parse_labels(line[brace + 1:i])
        if labels is None:
            return None
        rest = line[i + 1:].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            return None
        name, rest = parts[0], parts[1]
        labels = {}
    if not _METRIC_NAME_RE.match(name):
        return None
    fields = rest.split()
    if not fields or len(fields) > 2:
        return None
    value = _parse_value(fields[0])
    if value is None:
        return None
    ts: Optional[float] = None
    if len(fields) == 2:
        try:
            ts = float(fields[1])
        except ValueError:
            return None
    return name, labels, value, ts


def _family_of(name: str, types: dict) -> str:
    """The declared family a sample name belongs to (histogram suffixes
    fold into their base family)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def validate(text: str) -> list[str]:
    """Validate a text exposition; returns error strings (empty = valid)."""
    errors: list[str] = []
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    types: dict[str, str] = {}
    sampled: set[str] = set()
    seen_series: set[tuple] = set()
    #: family -> list of (labels-without-le, le, cumulative value)
    buckets: dict[str, list[tuple[tuple, float, float]]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment, fine
            if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                errors.append(
                    f"line {lineno}: malformed {parts[1]} line: {line!r}"
                )
                continue
            name = parts[2]
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    errors.append(
                        f"line {lineno}: unknown type {kind!r} for {name}"
                    )
                    continue
                if name in types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                if name in sampled:
                    errors.append(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                types.setdefault(name, kind)
            continue
        parsed = parse_sample_line(line)
        if parsed is None:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, labels, value, _ts = parsed
        family = _family_of(name, types)
        sampled.add(family)
        kind = types.get(family)
        if kind in ("histogram", "summary") and name == family and \
                kind == "histogram":
            errors.append(
                f"line {lineno}: histogram {family} exposes a bare sample "
                f"{name!r} (expected _bucket/_sum/_count)"
            )
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {line!r}")
        seen_series.add(series_key)
        if kind == "histogram":
            base_labels = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name == family + "_bucket":
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                    continue
                le = _parse_value(labels["le"])
                if le is None:
                    errors.append(
                        f"line {lineno}: malformed le value "
                        f"{labels['le']!r}"
                    )
                    continue
                buckets.setdefault(family, []).append(
                    (base_labels, le, value)
                )
            elif name == family + "_count":
                counts.setdefault(family, {})[base_labels] = value

    # Histogram shape checks: +Inf bucket present, cumulative counts
    # monotone in le, _count consistent with the +Inf bucket.
    for family, entries in buckets.items():
        by_series: dict[tuple, list[tuple[float, float]]] = {}
        for base_labels, le, value in entries:
            by_series.setdefault(base_labels, []).append((le, value))
        for base_labels, series in by_series.items():
            series.sort(key=lambda e: e[0])
            les = [le for le, _v in series]
            if float("inf") not in les:
                errors.append(
                    f"histogram {family}{dict(base_labels)} is missing "
                    "its le=\"+Inf\" bucket"
                )
            values = [v for _le, v in series]
            if any(b < a for a, b in zip(values, values[1:])):
                errors.append(
                    f"histogram {family}{dict(base_labels)} bucket counts "
                    "are not cumulative (decreasing in le)"
                )
            total = counts.get(family, {}).get(base_labels)
            if total is not None and les and les[-1] == float("inf") and \
                    total != values[-1]:
                errors.append(
                    f"histogram {family}{dict(base_labels)}: _count "
                    f"{total} != +Inf bucket {values[-1]}"
                )
    return errors


def main(argv: Optional[list[str]] = None) -> int:
    """Validate exposition files (or stdin with ``-``); 0 iff all valid."""
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.obs.promtext FILE [FILE...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in args:
        if path == "-":
            text = sys.stdin.read()
        else:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                print(f"{path}: cannot read: {exc}", file=sys.stderr)
                status = 2
                continue
        errors = validate(text)
        if errors:
            status = 1
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            samples = sum(
                1 for line in text.splitlines()
                if line.strip() and not line.startswith("#")
            )
            print(f"{path}: ok ({samples} samples)")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
