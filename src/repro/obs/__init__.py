"""Observability: tracing, unified metrics, and selection provenance.

Three dependency-free pillars wired through the selection stack:

- :mod:`repro.obs.trace` — per-request span trees with context
  propagation (``Tracer``), a zero-cost disabled path (``NULL_TRACER``),
  JSONL export, and the ``repro-trace`` CLI (:mod:`repro.obs.tracecli`);
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry
  (``MetricsRegistry``) with Prometheus text exposition, validated by
  :mod:`repro.obs.promtext`;
- :mod:`repro.obs.explain` — ``ExplainRecord`` provenance for selection
  decisions (peel sequence, bottleneck edge, per-node CPU, snapshot
  staleness, rejection reasons).
"""

from .explain import (
    BottleneckEdge,
    ExplainRecord,
    PeelStep,
    bottleneck_edge,
    explain_rejection,
    explain_selection,
)
from .metrics import (
    DURATION_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .promtext import validate as validate_exposition
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BottleneckEdge",
    "Counter",
    "DURATION_BUCKETS",
    "ExplainRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PeelStep",
    "REGISTRY",
    "Span",
    "Tracer",
    "bottleneck_edge",
    "explain_rejection",
    "explain_selection",
    "validate_exposition",
]
