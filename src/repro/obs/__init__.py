"""Observability: tracing, unified metrics, and selection provenance.

Three dependency-free pillars wired through the selection stack:

- :mod:`repro.obs.trace` — per-request span trees with context
  propagation (``Tracer``), a zero-cost disabled path (``NULL_TRACER``),
  JSONL export, and the ``repro-trace`` CLI (:mod:`repro.obs.tracecli`);
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry
  (``MetricsRegistry``) with Prometheus text exposition, cross-process
  federation (``MetricsFederation``), validated by
  :mod:`repro.obs.promtext`;
- :mod:`repro.obs.slo` — rolling-window SLO objectives with
  multi-window burn-rate evaluation (``SloMonitor``) and the
  ``repro-top`` live status CLI (:mod:`repro.obs.topcli`);
- :mod:`repro.obs.explain` — ``ExplainRecord`` provenance for selection
  decisions (peel sequence, bottleneck edge, per-node CPU, snapshot
  staleness, rejection reasons).
"""

from .explain import (
    BottleneckEdge,
    ExplainRecord,
    PeelStep,
    bottleneck_edge,
    explain_rejection,
    explain_selection,
)
from .metrics import (
    DURATION_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsFederation,
    MetricsRegistry,
)
from .promtext import validate as validate_exposition
from .slo import DEFAULT_WINDOWS, SloMonitor, SloObjective
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BottleneckEdge",
    "Counter",
    "DEFAULT_WINDOWS",
    "DURATION_BUCKETS",
    "ExplainRecord",
    "Gauge",
    "Histogram",
    "MetricsFederation",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PeelStep",
    "REGISTRY",
    "SloMonitor",
    "SloObjective",
    "Span",
    "Tracer",
    "bottleneck_edge",
    "explain_rejection",
    "explain_selection",
    "validate_exposition",
]
