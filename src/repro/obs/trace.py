"""Request tracing: span trees over the selection pipeline.

A :class:`Tracer` produces per-request **trace trees**: each span carries
a trace id, a span id, its parent span id, a monotonic start offset and
duration, structured attributes, and an ok/error status.  Context
propagates through a plain span stack — ``with tracer.span(...)`` nests
under whatever span is currently open — so one service request becomes
one tree: admission under the request, the pipeline stages under
admission, and any collector sweep or fault event that fired in between
attached where it actually happened.

Two properties keep the tracer viable on the admission hot path:

- **Pre-measured spans** (:meth:`Tracer.record`): the service already
  brackets every pipeline stage with ``perf_counter()`` for its stage
  timers, so stage spans are built from those existing timestamps
  instead of re-entering a context manager per stage.
- **A null tracer** (:data:`NULL_TRACER`): tracing is off by default,
  and the disabled path is a singleton whose ``span()`` returns a shared
  no-op span — no allocation, no id bookkeeping, no buffering.  The
  hot-path budget (``benchmarks/bench_service_hotpath.py``) holds the
  disabled overhead under 5% and the enabled overhead under 15%.

Spans serialize to JSONL (one JSON object per line, see
:meth:`Tracer.write_jsonl`); the ``repro-trace`` CLI
(:mod:`repro.obs.tracecli`) pretty-prints and filters the result.  This
module is dependency-free — nothing here imports the rest of the
package, so any layer (collector, faults, service) can emit spans.

**Cross-process propagation** (DESIGN.md §17): a caller ships
:meth:`Tracer.context` — ``(trace id, parent span id)`` — inside its RPC
envelope; the remote side records spans into its own buffered tracer and
returns the finished dicts (:meth:`Tracer.drain`, or a per-call slice of
:attr:`Tracer.spans`).  The caller stitches them into its tree with
:meth:`Tracer.adopt`, which re-allocates span ids from the local
sequence, re-parents the batch's roots under the propagated context, and
stamps attribution attributes (``shard=``, ``pid=``) on every adopted
span — so one request becomes one tree even when its stages ran in
worker processes.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed operation in a trace tree.

    Use as a context manager (``with tracer.span("service.request")``);
    entering starts the clock and pushes the span onto the tracer's
    context stack, exiting records the duration, marks ``status="error"``
    if an exception escaped, and hands the finished span to the tracer.
    """

    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id",
        "start_s", "duration_s", "status", "attrs", "events",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_s = 0.0
        self.duration_s = 0.0
        self.status = "ok"
        self.attrs = attrs
        self.events: list[dict] = []

    def set(self, **attrs: Any) -> None:
        """Attach structured attributes to the span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event (e.g. a fault landing mid-span)."""
        self.events.append({
            "name": name,
            "at_s": self._tracer._now(),
            "attrs": attrs,
        })

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.start_s = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.duration_s = self._tracer._now() - self.start_s
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        """JSONL-line form of the finished span (times in microseconds)."""
        out = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_us": round(self.start_s * 1e6, 1),
            "duration_us": round(self.duration_s * 1e6, 1),
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.events:
            out["events"] = [
                {
                    "name": e["name"],
                    "at_us": round(e["at_s"] * 1e6, 1),
                    "attrs": e["attrs"],
                }
                for e in self.events
            ]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Span {self.name!r} trace={self.trace_id} span={self.span_id} "
            f"{self.duration_s * 1e6:.1f}us {self.status}>"
        )


class Tracer:
    """Collects spans into per-request trace trees.

    Parameters
    ----------
    sink:
        Optional callable invoked with each finished span's dict (for
        streaming export).  Finished spans are always buffered on
        :attr:`spans` as well, in completion order (children before
        parents — consumers rebuild the tree from parent ids).
    clock:
        Optional *logical* time source (e.g. a simulator's ``now``);
        when set, every span and event is stamped with a ``t`` attribute
        at creation.  Span durations always come from
        :func:`time.perf_counter` — they measure real compute cost, not
        simulated time.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Callable[[dict], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._sink = sink
        self.clock = clock
        self._epoch = perf_counter()
        self._next_span = 1
        self._next_trace = 1
        self._stack: list[Span] = []
        #: Finished spans (dicts), completion order.
        self.spans: list[dict] = []

    # -- internals -------------------------------------------------------------
    def _now(self) -> float:
        """Monotonic seconds since tracer construction."""
        return perf_counter() - self._epoch

    def _open(self, span: Span) -> None:
        span.span_id = self._next_span
        self._next_span += 1
        if self._stack:
            parent = self._stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = self._next_trace
            self._next_trace += 1
        if self.clock is not None:
            span.attrs.setdefault("t", self.clock())
        self._stack.append(span)

    def _finish(self, span: Span) -> None:
        # Tolerate exotic exit orders (generators finalized late): drop
        # everything above the finishing span, not just the top.
        if span in self._stack:
            del self._stack[self._stack.index(span):]
        record = span.to_dict()
        self.spans.append(record)
        if self._sink is not None:
            self._sink(record)

    # -- public surface ---------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def context(self) -> Optional[tuple[int, int]]:
        """``(trace id, span id)`` of the innermost open span, or ``None``.

        The propagation handle a caller ships inside an RPC envelope; the
        matching :meth:`adopt` on the reply re-parents the remote spans
        under exactly this context.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return (top.trace_id, top.span_id)

    def drain(self) -> list[dict]:
        """Take (and clear) the finished-span buffer.

        Used by remote-side tracers: spans recorded since the last drain
        travel back inside the reply envelope and are :meth:`adopt`-ed by
        the caller.  The context stack is untouched — open spans finish
        into the fresh buffer.
        """
        out, self.spans = self.spans, []
        return out

    def adopt(
        self,
        spans: list[dict],
        *,
        parent: Optional[tuple[int, int]] = None,
        base_s: Optional[float] = None,
        **attrs: Any,
    ) -> None:
        """Stitch a batch of remote span dicts into this tracer's stream.

        Every span gets a fresh span id from the local sequence (remote
        ids are only unique within their own tracer).  Parent links
        *inside* the batch are remapped; batch roots re-parent under
        ``parent`` — the ``(trace id, span id)`` context shipped with the
        original request — or become fresh root traces when no context
        was propagated (one fresh trace id per remote trace).  ``base_s``
        rebases the batch's earliest start onto this tracer's timeline
        (remote ``perf_counter`` epochs are not comparable across
        processes; durations are exact either way).  ``attrs`` — e.g.
        ``shard=`` / ``pid=`` — are stamped on every adopted span.
        """
        if not spans:
            return
        mapping: dict[int, int] = {}
        for s in spans:
            mapping[s["span"]] = self._next_span
            self._next_span += 1
        shift_us = 0.0
        if base_s is not None:
            shift_us = base_s * 1e6 - min(
                s.get("start_us", 0.0) for s in spans
            )
        trace_map: dict[int, int] = {}
        for s in spans:
            ns = dict(s)
            ns["span"] = mapping[s["span"]]
            old_parent = s.get("parent")
            in_batch = old_parent in mapping
            if parent is not None:
                ns["trace"] = parent[0]
                ns["parent"] = mapping[old_parent] if in_batch else parent[1]
            else:
                old_trace = s.get("trace", 0)
                if old_trace not in trace_map:
                    trace_map[old_trace] = self._next_trace
                    self._next_trace += 1
                ns["trace"] = trace_map[old_trace]
                ns["parent"] = mapping[old_parent] if in_batch else None
            if shift_us:
                ns["start_us"] = round(
                    s.get("start_us", 0.0) + shift_us, 1
                )
                if "events" in s:
                    ns["events"] = [
                        {**e, "at_us": round(
                            e.get("at_us", 0.0) + shift_us, 1
                        )}
                        for e in s["events"]
                    ]
            if attrs:
                merged = dict(ns.get("attrs") or {})
                merged.update(attrs)
                ns["attrs"] = merged
            self.spans.append(ns)
            if self._sink is not None:
                self._sink(ns)

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it (``with``) to start the clock and nest."""
        return Span(self, name, attrs)

    def record(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> None:
        """Log an already-measured operation as a child of the current span.

        ``start``/``end`` are raw :func:`time.perf_counter` readings — the
        hot path brackets its stages once and reuses the timestamps here
        rather than paying a context manager per stage.
        """
        span = Span(self, name, attrs)
        span.span_id = self._next_span
        self._next_span += 1
        if self._stack:
            parent = self._stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = self._next_trace
            self._next_trace += 1
        span.start_s = start - self._epoch
        span.duration_s = end - start
        self._finish(span)

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time occurrence (fault landing, eviction, ...).

        Attached to the innermost open span when one exists — a fault
        that races an in-flight request shows up *inside* that request's
        tree — and logged as a zero-duration root span otherwise.
        """
        if self._stack:
            self._stack[-1].event(name, **attrs)
            return
        span = Span(self, name, attrs)
        span.span_id = self._next_span
        self._next_span += 1
        span.trace_id = self._next_trace
        self._next_trace += 1
        if self.clock is not None:
            span.attrs.setdefault("t", self.clock())
        span.start_s = self._now()
        self._finish(span)

    def to_jsonl(self) -> str:
        """All finished spans as JSONL text (completion order)."""
        return "".join(
            json.dumps(s, default=str) + "\n" for s in self.spans
        )

    def write_jsonl(self, path: str) -> int:
        """Write the span buffer to ``path``; returns the span count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer {len(self.spans)} spans, depth={len(self._stack)}>"


class _NullSpan:
    """The shared no-op span the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs: Any) -> None:
        pass

    def event(self, _name: str, **_attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    The default tracer everywhere.  ``span()`` returns one shared no-op
    span (no allocation), so instrumented code never branches on "is
    tracing on" beyond an attribute check — the disabled cost per
    request is a handful of method calls.
    """

    enabled = False
    spans: tuple = ()
    clock = None

    def span(self, _name: str, **_attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, _name: str, _start: float, _end: float,
               **_attrs: Any) -> None:
        pass

    def event(self, _name: str, **_attrs: Any) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def context(self) -> None:
        return None

    def drain(self) -> list:
        return []

    def adopt(self, _spans: list, **_kw: Any) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, _path: str) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullTracer>"


#: The process-wide disabled tracer; instrumented components default to it.
NULL_TRACER = NullTracer()
