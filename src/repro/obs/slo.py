"""Rolling-window SLO objectives and multi-window burn-rate alerts.

The selection service's health is defined by a handful of service-level
objectives (SLOs): admit latency stays under a threshold at the p99,
the availability ratio (non-rejected requests / all requests) stays
above a target, and worker restarts stay within an hourly budget.  This
module evaluates those objectives over rolling time windows and reports
*burn rates* — how fast the error budget is being consumed relative to
a steady pace that would exactly exhaust it over the horizon.

The alerting policy follows the multi-window burn-rate pattern: an
objective *pages* only when **every** configured ``(window, threshold)``
pair is burning — a long window proves the problem is sustained, a
short window proves it is still happening.  With the defaults
``((300 s, 14.4x), (3600 s, 6x))`` a paging signal means roughly 2-5%
of a 30-day budget is gone within the hour.

Design notes:

- Time comes from an injected ``clock`` (defaulting to
  ``time.monotonic``), so services driven by a manual test clock get
  fully deterministic SLO evaluation.
- Samples are kept in coarse time buckets (a stamped ring of 60 slots
  per window horizon), not per-event deques — ``observe_request`` is on
  the admit path and must stay O(1) with zero allocation.
- ``evaluate()`` returns plain dicts/floats/strings so the result can
  be embedded verbatim in ``metrics_snapshot()`` / JSON output.

See DESIGN.md §17.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = [
    "DEFAULT_WINDOWS",
    "SloObjective",
    "SloMonitor",
]

#: ``(window_seconds, burn_threshold)`` pairs for the page decision.
#: Both windows must exceed their threshold simultaneously to page.
DEFAULT_WINDOWS: tuple[tuple[float, float], ...] = (
    (300.0, 14.4),
    (3600.0, 6.0),
)

_SLOTS = 60  # buckets per window horizon


class _Window:
    """A stamped ring of ``_SLOTS`` time buckets over ``horizon_s``.

    Each slot accumulates (good, bad) event counts for one bucket of
    ``horizon_s / _SLOTS`` seconds.  Slots are lazily reset when their
    stamp no longer matches the current absolute bucket index, so there
    is no background sweeper and stale data ages out on write *or*
    read.
    """

    __slots__ = ("horizon_s", "bucket_s", "_good", "_bad", "_stamp")

    def __init__(self, horizon_s: float) -> None:
        self.horizon_s = float(horizon_s)
        self.bucket_s = self.horizon_s / _SLOTS
        self._good = [0.0] * _SLOTS
        self._bad = [0.0] * _SLOTS
        self._stamp = [-1] * _SLOTS

    def add(self, now: float, good: float, bad: float) -> None:
        idx = int(now / self.bucket_s)
        slot = idx % _SLOTS
        if self._stamp[slot] != idx:
            self._stamp[slot] = idx
            self._good[slot] = 0.0
            self._bad[slot] = 0.0
        self._good[slot] += good
        self._bad[slot] += bad

    def totals(self, now: float) -> tuple[float, float]:
        """(good, bad) summed over buckets inside the horizon."""
        idx = int(now / self.bucket_s)
        lo = idx - _SLOTS + 1
        good = bad = 0.0
        for slot in range(_SLOTS):
            stamp = self._stamp[slot]
            if lo <= stamp <= idx:
                good += self._good[slot]
                bad += self._bad[slot]
        return good, bad


class SloObjective:
    """One objective: a ratio target or an absolute event budget.

    Exactly one of ``target`` / ``budget_per_hour`` must be given:

    - ``target`` (e.g. ``0.99``): the good-event ratio must stay at or
      above the target.  Burn rate is ``bad_fraction / (1 - target)``.
    - ``budget_per_hour`` (e.g. ``2.0`` restarts): at most that many
      bad events per hour.  Burn rate is ``bad / (budget * horizon/1h)``.
    """

    def __init__(
        self,
        name: str,
        *,
        target: Optional[float] = None,
        budget_per_hour: Optional[float] = None,
        windows: tuple[tuple[float, float], ...] = DEFAULT_WINDOWS,
    ) -> None:
        if (target is None) == (budget_per_hour is None):
            raise ValueError(
                "exactly one of target/budget_per_hour is required"
            )
        if target is not None and not (0.0 < target < 1.0):
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = name
        self.target = target
        self.budget_per_hour = budget_per_hour
        self.windows = tuple(windows)
        self._rings = [_Window(horizon) for horizon, _ in self.windows]

    def add(self, now: float, good: float, bad: float) -> None:
        for ring in self._rings:
            ring.add(now, good, bad)

    def _burn(self, ring: _Window, now: float) -> float:
        good, bad = ring.totals(now)
        if self.target is not None:
            total = good + bad
            if total <= 0.0:
                return 0.0
            return (bad / total) / (1.0 - self.target)
        allowed = self.budget_per_hour * ring.horizon_s / 3600.0
        if allowed <= 0.0:
            return 0.0 if bad <= 0.0 else float("inf")
        return bad / allowed

    def evaluate(self, now: float) -> dict:
        """Burn per window plus a rolled-up status.

        ``paging`` when every window exceeds its threshold, ``burning``
        when any window burns faster than 1x (budget being consumed
        faster than steady-state), ``ok`` otherwise.
        """
        burns = []
        paging = True
        burning = False
        for (horizon, threshold), ring in zip(self.windows, self._rings):
            burn = self._burn(ring, now)
            burns.append({
                "window_s": horizon,
                "burn_rate": round(burn, 4),
                "threshold": threshold,
            })
            if burn <= threshold:
                paging = False
            if burn > 1.0:
                burning = True
        status = "paging" if paging else ("burning" if burning else "ok")
        out: dict = {"status": status, "windows": burns}
        if self.target is not None:
            out["target"] = self.target
        else:
            out["budget_per_hour"] = self.budget_per_hour
        return out


_STATUS_CODE = {"ok": 0.0, "burning": 1.0, "paging": 2.0}
_P99_RING = 512


class SloMonitor:
    """Tracks the service's standing objectives and evaluates burn.

    Objectives:

    - ``admit_latency`` — requests admitted (or queued) in at most
      ``latency_threshold_s`` wall seconds, target p-fraction 0.99.
    - ``availability`` — non-rejected fraction of requests, target
      0.95.  Rejections are a normal admission-control outcome, so the
      target is deliberately looser than the latency objective.
    - ``worker_restarts`` — shard-worker process restarts, budgeted at
      ``restart_budget_per_hour`` (default 2/h).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        latency_threshold_s: float = 0.005,
        latency_target: float = 0.99,
        availability_target: float = 0.95,
        restart_budget_per_hour: float = 2.0,
        windows: tuple[tuple[float, float], ...] = DEFAULT_WINDOWS,
    ) -> None:
        self.clock = clock
        self.latency_threshold_s = latency_threshold_s
        self.objectives = {
            "admit_latency": SloObjective(
                "admit_latency", target=latency_target, windows=windows,
            ),
            "availability": SloObjective(
                "availability", target=availability_target, windows=windows,
            ),
            "worker_restarts": SloObjective(
                "worker_restarts",
                budget_per_hour=restart_budget_per_hour,
                windows=windows,
            ),
        }
        self._latencies = [0.0] * _P99_RING
        self._lat_n = 0  # total observations (ring index = n % _P99_RING)

    # -- observation (hot path: O(1), no allocation) --

    def observe_request(
        self, latency_s: float, ok: bool, now: Optional[float] = None,
    ) -> None:
        if now is None:
            now = self.clock()
        fast = latency_s <= self.latency_threshold_s
        self.objectives["admit_latency"].add(
            now, 1.0 if fast else 0.0, 0.0 if fast else 1.0,
        )
        self.objectives["availability"].add(
            now, 1.0 if ok else 0.0, 0.0 if ok else 1.0,
        )
        self._latencies[self._lat_n % _P99_RING] = latency_s
        self._lat_n += 1

    def observe_restart(
        self, count: float = 1.0, now: Optional[float] = None,
    ) -> None:
        if count <= 0:
            return
        if now is None:
            now = self.clock()
        self.objectives["worker_restarts"].add(now, 0.0, count)

    # -- evaluation --

    def latency_p99_s(self) -> float:
        n = min(self._lat_n, _P99_RING)
        if n == 0:
            return 0.0
        window = sorted(self._latencies[:n])
        return window[min(n - 1, int(0.99 * n))]

    def evaluate(self, now: Optional[float] = None) -> dict:
        if now is None:
            now = self.clock()
        objectives = {
            name: obj.evaluate(now) for name, obj in self.objectives.items()
        }
        worst = max(
            (o["status"] for o in objectives.values()),
            key=lambda s: _STATUS_CODE[s],
        )
        return {
            "status": worst,
            "latency_p99_s": round(self.latency_p99_s(), 6),
            "objectives": objectives,
        }

    def bind(self, registry) -> None:
        """Export burn rates and status codes as callback gauges."""
        for name, obj in self.objectives.items():
            for horizon, _threshold in obj.windows:
                def burn(o=obj, h=horizon):
                    now = self.clock()
                    for (win, _t), ring in zip(o.windows, o._rings):
                        if win == h:
                            return o._burn(ring, now)
                    return 0.0
                registry.gauge(
                    "repro_slo_burn_rate",
                    "SLO error-budget burn rate per evaluation window.",
                    labels={"objective": name, "window": f"{int(horizon)}s"},
                    fn=burn,
                )
            registry.gauge(
                "repro_slo_status",
                "SLO status per objective (0=ok, 1=burning, 2=paging).",
                labels={"objective": name},
                fn=lambda o=obj: _STATUS_CODE[
                    o.evaluate(self.clock())["status"]
                ],
            )
