"""Selection provenance: *why* a node set was (or was not) chosen.

The selection kernel answers "what"; an :class:`ExplainRecord` answers
"why": the peel sequence the Figure 2/3 loops removed (each edge with
its residual bandwidth at deletion), the **bottleneck edge and node
pair** that fix the final min-bandwidth, every selected node's
fractional CPU at decision time, and the measurement provenance the
decision read — snapshot epoch, snapshot age, and per-resource staleness
ages where the snapshot carries them.  Infeasible requests get a record
too, carrying the rejection reason instead of a placement.

Records are built **post hoc** from the same graph the decision ran on:
the peel sequence is recomputed from :func:`repro.core.kernel.peel_order`
(deterministic — the peel order is a pure function of the graph) and
truncated at the selection's recorded iteration count, so the kernel's
hot loop carries zero explain overhead when nobody asks.

Surfaces: ``repro-select --explain``, ``repro.select(..., explain=True)``
(the record lands in ``Selection.extras[ExtrasKey.EXPLAIN]``), and
``SelectionService.request(..., explain=True)`` (on the returned
:class:`~repro.service.Grant`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..core.kernel import peel_order
from ..core.metrics import (
    DEFAULT_REFERENCES,
    References,
    link_bandwidth_fraction,
    node_compute_fraction,
)

__all__ = [
    "BottleneckEdge",
    "ExplainRecord",
    "PeelStep",
    "bottleneck_edge",
    "explain_rejection",
    "explain_selection",
]

#: Peel steps kept on a record before truncating (a 10k-edge peel is
#: provenance nobody reads; the head of the sequence is what matters).
MAX_PEEL_STEPS = 64


def _num(v: Optional[float]) -> Optional[float]:
    """JSON-safe number: non-finite floats become None."""
    if v is None:
        return None
    f = float(v)
    if f != f or f in (float("inf"), float("-inf")):
        return None
    return f


@dataclass(frozen=True)
class PeelStep:
    """One edge removal of the peeling loop, in execution order."""

    u: str
    v: str
    #: The peel metric at deletion (bps for Figure 2, a fraction for the
    #: balanced Figure 3 peel).
    metric: float
    #: Residual available bandwidth (bps) on the edge at deletion.
    available_bps: float

    def to_dict(self) -> dict:
        return {
            "edge": f"{self.u}--{self.v}",
            "metric": _num(self.metric),
            "available_bps": _num(self.available_bps),
        }


@dataclass(frozen=True)
class BottleneckEdge:
    """The edge fixing the selection's final min-bandwidth.

    ``pair`` is the (ordered) selected node pair whose bottleneck path
    crosses the edge; ``towards`` the direction the binding traffic
    flows.
    """

    u: str
    v: str
    towards: str
    available_bps: float
    pair: tuple[str, str]

    def to_dict(self) -> dict:
        return {
            "edge": f"{self.u}--{self.v}",
            "towards": self.towards,
            "available_bps": _num(self.available_bps),
            "pair": list(self.pair),
        }


@dataclass
class ExplainRecord:
    """Provenance for one selection decision (or rejection)."""

    procedure: str = ""
    algorithm: str = ""
    nodes: tuple[str, ...] = ()
    objective: Optional[float] = None
    min_bw_bps: Optional[float] = None
    #: Edge removals the peeling loop performed, in order (truncated at
    #: :data:`MAX_PEEL_STEPS`; empty for non-peeling procedures).
    peel_sequence: list[PeelStep] = field(default_factory=list)
    peel_truncated: bool = False
    #: None for single-node selections (no pair to bottleneck) and for
    #: rejections.
    bottleneck: Optional[BottleneckEdge] = None
    #: Fractional CPU of each selected node at decision time.
    node_cpu: dict[str, float] = field(default_factory=dict)
    #: Snapshot generation the decision ran on (service-side only).
    snapshot_epoch: Optional[int] = None
    #: Measurement staleness of the inputs the decision read.
    staleness: dict = field(default_factory=dict)
    #: Why the request was infeasible (None on success).
    rejection: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-safe dict (non-finite numbers become null)."""
        return {
            "procedure": self.procedure,
            "algorithm": self.algorithm,
            "nodes": list(self.nodes),
            "objective": _num(self.objective),
            "min_bw_bps": _num(self.min_bw_bps),
            "peel_sequence": [s.to_dict() for s in self.peel_sequence],
            "peel_truncated": self.peel_truncated,
            "bottleneck": (
                None if self.bottleneck is None else self.bottleneck.to_dict()
            ),
            "node_cpu": {k: _num(v) for k, v in self.node_cpu.items()},
            "snapshot_epoch": self.snapshot_epoch,
            "staleness": self.staleness,
            "rejection": self.rejection,
        }


def bottleneck_edge(graph, nodes) -> Optional[BottleneckEdge]:
    """The directed edge binding the min pairwise bandwidth of ``nodes``.

    Walks every ordered pair's path (the same bottleneck-path evaluation
    :func:`repro.core.metrics.min_pairwise_bandwidth` scores) and returns
    the first strictly-smallest edge, deterministically: pairs in sorted
    order, hops in path order.  None for fewer than two nodes or when a
    pair is disconnected (min bandwidth is 0 with no single edge to
    blame).
    """
    names = sorted(set(nodes))
    if len(names) < 2:
        return None
    best: Optional[BottleneckEdge] = None
    for a, b in itertools.combinations(names, 2):
        for src, dst in ((a, b), (b, a)):
            path = graph.path(src, dst)
            if path is None:
                return None
            for u, v in zip(path, path[1:]):
                link = graph.link(u, v)
                avail = link.available_towards(v)
                if best is None or avail < best.available_bps:
                    best = BottleneckEdge(
                        u=link.u, v=link.v, towards=v,
                        available_bps=avail, pair=(src, dst),
                    )
    return best


def _peel_sequence(
    graph, selection, refs: References, max_steps: int
) -> tuple[list[PeelStep], bool]:
    """Re-derive the edge removals the peeling loop performed.

    The peel order is a pure function of the graph and the metric family
    (:func:`repro.core.kernel.peel_order` — the same strict total order
    the kernel's reverse replay consumed), and ``selection.iterations``
    records how far the forward loop got, so the removal sequence is
    exactly the order's first ``iterations`` entries.
    """
    if selection.iterations <= 0:
        return [], False
    if selection.algorithm == "max-bandwidth":
        def metric(link):
            return link.available
    elif selection.algorithm == "balanced":
        def metric(link):
            return link_bandwidth_fraction(link, refs)
    else:
        return [], False
    order = peel_order(graph, metric)[: selection.iterations]
    truncated = len(order) > max_steps
    steps = [
        PeelStep(
            u=link.u, v=link.v, metric=value,
            available_bps=link.available,
        )
        for value, link in order[:max_steps]
    ]
    return steps, truncated


def _staleness(graph, nodes, snapshot_age_s: Optional[float]) -> dict:
    """Measurement-health provenance for the inputs the decision read.

    Per-resource ``age_s`` attributes are collected where the snapshot
    carries them (:meth:`repro.remos.RemosAPI.topology` annotates them);
    stale/unmonitorable marks are reported graph-wide — an excluded node
    shapes the decision exactly by being excluded.
    """
    node_ages = {}
    for name in nodes:
        if graph.has_node(name):
            age = graph.node(name).attrs.get("age_s")
            if age is not None:
                node_ages[name] = _num(age)
    link_ages = {}
    stale_links = []
    seen = set()
    for a, b in itertools.permutations(sorted(set(nodes)), 2):
        path = graph.path(a, b)
        if path is None:
            continue
        for u, v in zip(path, path[1:]):
            link = graph.link(u, v)
            if link.key in seen:
                continue
            seen.add(link.key)
            tag = f"{link.u}--{link.v}"
            age = link.attrs.get("age_s")
            if age is not None:
                link_ages[tag] = _num(age)
            if link.attrs.get("stale"):
                stale_links.append(tag)
    unmonitorable = sorted(
        n.name for n in graph.nodes() if n.attrs.get("unmonitorable")
    )
    out: dict = {}
    if snapshot_age_s is not None:
        out["snapshot_age_s"] = _num(snapshot_age_s)
    if node_ages:
        out["node_age_s"] = node_ages
    if link_ages:
        out["link_age_s"] = link_ages
    if stale_links:
        out["stale_links"] = sorted(stale_links)
    if unmonitorable:
        out["unmonitorable_nodes"] = unmonitorable
    return out


def explain_selection(
    graph,
    selection,
    *,
    refs: Optional[References] = None,
    snapshot_epoch: Optional[int] = None,
    snapshot_age_s: Optional[float] = None,
    max_peel: int = MAX_PEEL_STEPS,
) -> ExplainRecord:
    """Build the provenance record for a completed selection.

    ``graph`` must be the graph the selection actually ran on (for the
    service, the residual view at decision time).  ``refs`` should match
    the references the procedure used (priorities perturb the balanced
    peel metric); defaults to the homogeneous references.
    """
    refs = refs if refs is not None else DEFAULT_REFERENCES
    steps, truncated = _peel_sequence(graph, selection, refs, max_peel)
    node_cpu = {
        name: node_compute_fraction(graph.node(name), refs)
        for name in selection.nodes
        if graph.has_node(name)
    }
    return ExplainRecord(
        procedure=str(selection.extras.get("procedure", "")),
        algorithm=selection.algorithm,
        nodes=tuple(selection.nodes),
        objective=selection.objective,
        min_bw_bps=selection.min_bw_bps,
        peel_sequence=steps,
        peel_truncated=truncated,
        bottleneck=bottleneck_edge(graph, selection.nodes),
        node_cpu=node_cpu,
        snapshot_epoch=snapshot_epoch,
        staleness=_staleness(graph, selection.nodes, snapshot_age_s),
    )


def explain_rejection(
    reason: str,
    *,
    graph=None,
    snapshot_epoch: Optional[int] = None,
    snapshot_age_s: Optional[float] = None,
) -> ExplainRecord:
    """A provenance record for an infeasible request."""
    staleness = (
        _staleness(graph, (), snapshot_age_s) if graph is not None
        else ({"snapshot_age_s": _num(snapshot_age_s)}
              if snapshot_age_s is not None else {})
    )
    return ExplainRecord(
        rejection=reason,
        snapshot_epoch=snapshot_epoch,
        staleness=staleness,
    )
