"""A unified metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` spans every subsystem wired to a selection
pipeline — collector, Remos API, kernel caches, reservation ledger,
admission queue, and the service's own counters — so a single scrape
(``registry.expose_text()``, served by ``repro-serve --metrics-port``)
answers "what is this deployment doing" without reaching into each
layer's private counters.

Three instrument kinds, following Prometheus semantics:

- :class:`Counter` — monotonically non-decreasing totals;
- :class:`Gauge` — point-in-time values that go both ways;
- :class:`Histogram` — observations bucketed under explicit bounds, with
  cumulative ``_bucket{le=...}`` counts plus ``_sum``/``_count``.

Counters and gauges may be **callback-backed** (``fn=...``): the value is
read at collection time from an existing counter attribute, which is how
the pre-existing telemetry (:class:`~repro.service.ServiceMetrics`,
cache/ledger counters) is absorbed without rewriting its producers —
they stay plain fast integer attributes and the registry re-exports
them.

Instrument names follow ``repro_<subsystem>_<name>_<unit>`` (DESIGN.md
§12); :func:`repro.obs.promtext.validate` checks the exposition format
itself.  This module is dependency-free (stdlib only).
"""

from __future__ import annotations

import logging
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsFederation",
    "MetricsRegistry",
    "REGISTRY",
]

logger = logging.getLogger("repro.obs.metrics")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds for pipeline-stage durations, in seconds:
#: 10 µs up to 1 s, roughly logarithmic — the service's warm-cache
#: stages sit in the 1–500 µs decades.
DURATION_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1.0,
)


def _fmt_value(v: float) -> str:
    """A sample value in Prometheus text form (``+Inf``/``-Inf``/``NaN``)."""
    if v != v:
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


class _Instrument:
    """Common state: identity, static labels, optional value callback."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Optional[dict] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = dict(labels or {})
        self._fn = fn
        self._value = 0.0


class Counter(_Instrument):
    """A monotonically non-decreasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise TypeError(
                f"counter {self.name!r} is callback-backed; "
                "update the underlying counter instead"
            )
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self._value += amount

    def read(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Gauge(_Instrument):
    """A point-in-time value (queue depth, headroom, epoch)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def read(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram(_Instrument):
    """Observations under explicit bucket bounds (plus ``+Inf``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DURATION_BUCKETS,
        labels: Optional[dict] = None,
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {bounds}")
        self.buckets = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` per bucket, ending at ``+Inf``."""
        out = []
        running = 0
        for bound, c in zip(self.buckets, self._counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out


class MetricsRegistry:
    """Get-or-create instrument store with Prometheus text exposition.

    Instruments are keyed by ``(name, sorted label items)``; re-requesting
    an existing instrument returns it (so independent subsystems can share
    a family), but re-requesting under a different *kind* is an error —
    one name, one type, exactly as the exposition format demands.
    Passing ``fn`` to an existing callback instrument rebinds the
    callback (a service rebuilding its residual view re-points the kernel
    gauges at the new view).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, _Instrument] = {}
        self._families: dict[str, tuple[str, str]] = {}  # name -> kind, help
        self._lock = threading.Lock()
        #: Callables invoked at the top of every scrape (see
        #: :meth:`add_collect_hook`).
        self._collect_hooks: list[Callable[[], None]] = []

    # -- collection hooks --------------------------------------------------------
    def add_collect_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the start of every :meth:`expose_text` /
        :meth:`dump` scrape, *before* the registry lock is taken.

        The federation hook: a router registers a harvest here so worker
        registries are pulled and merged on every scrape — metrics stay
        fresh without a polling thread, and the hook is free to create or
        update instruments (it runs outside the lock).  Hook failures are
        logged and swallowed; a dead worker must not break the scrape.
        """
        self._collect_hooks.append(fn)

    def _run_collect_hooks(self) -> None:
        for fn in list(self._collect_hooks):
            try:
                fn()
            except Exception:  # scrape must survive a harvest failure
                logger.exception("metrics collect hook failed")

    # -- creation ----------------------------------------------------------------
    def _check(self, name: str, kind: str, help_text: str,
               labels: Optional[dict]) -> tuple:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key in (labels or {}):
            if not _LABEL_RE.match(key) or key.startswith("__"):
                raise ValueError(f"invalid label name {key!r}")
        family = self._families.get(name)
        if family is not None and family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]}, "
                f"cannot re-register as {kind}"
            )
        if family is None:
            self._families[name] = (kind, help_text)
        return (name, tuple(sorted((labels or {}).items())))

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[dict] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        with self._lock:
            key = self._check(name, "counter", help_text, labels)
            inst = self._instruments.get(key)
            if inst is None:
                inst = Counter(name, help_text, labels, fn)
                self._instruments[key] = inst
            elif fn is not None:
                inst._fn = fn
            return inst  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[dict] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        with self._lock:
            key = self._check(name, "gauge", help_text, labels)
            inst = self._instruments.get(key)
            if inst is None:
                inst = Gauge(name, help_text, labels, fn)
                self._instruments[key] = inst
            elif fn is not None:
                inst._fn = fn
            return inst  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DURATION_BUCKETS,
        labels: Optional[dict] = None,
    ) -> Histogram:
        with self._lock:
            key = self._check(name, "histogram", help_text, labels)
            inst = self._instruments.get(key)
            if inst is None:
                inst = Histogram(name, help_text, buckets, labels)
                self._instruments[key] = inst
            return inst  # type: ignore[return-value]

    # -- introspection -----------------------------------------------------------
    def names(self) -> list[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def subsystems(self) -> set[str]:
        """Distinct ``<subsystem>`` segments of ``repro_<subsystem>_...``
        names — the coverage check the acceptance tests use."""
        out = set()
        for name in self._families:
            parts = name.split("_")
            if len(parts) >= 2 and parts[0] == "repro":
                out.add(parts[1])
        return out

    def dump(self) -> dict[str, float]:
        """Flat ``{name{labels}: value}`` snapshot (histograms summarized
        as ``_sum``/``_count``)."""
        self._run_collect_hooks()
        out: dict[str, float] = {}
        for inst in self._instruments.values():
            label_part = _format_labels(inst.labels)
            if isinstance(inst, Histogram):
                out[f"{inst.name}_sum{label_part}"] = inst.sum
                out[f"{inst.name}_count{label_part}"] = inst.count
            else:
                out[f"{inst.name}{label_part}"] = inst.read()
        return out

    def dump_state(self) -> list[dict]:
        """The registry's full state as picklable/JSON-safe dicts.

        One entry per instrument: ``{name, kind, help, labels, value}``
        for counters and gauges (callback-backed instruments are read
        now), plus ``{buckets, counts, sum, count}`` for histograms.
        This is the *producer* side of metrics federation — a worker
        process dumps its registry here and ships it over the pool pipe;
        the router's :class:`MetricsFederation` ingests it under a
        ``shard`` label.  Collect hooks do **not** run (the dump is
        itself what a hook harvests).
        """
        with self._lock:
            instruments = list(self._instruments.values())
            families = dict(self._families)
        out: list[dict] = []
        for inst in instruments:
            kind, help_text = families[inst.name]
            item: dict = {
                "name": inst.name,
                "kind": kind,
                "help": help_text,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                item["buckets"] = list(inst.buckets)
                item["counts"] = list(inst._counts)
                item["sum"] = inst._sum
                item["count"] = inst._count
            else:
                try:
                    item["value"] = float(inst.read())
                except Exception:  # a callback over torn-down state
                    continue
            out.append(item)
        return out

    # -- exposition --------------------------------------------------------------
    def expose_text(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        self._run_collect_hooks()
        by_family: dict[str, list[_Instrument]] = {}
        with self._lock:
            instruments = list(self._instruments.values())
            families = dict(self._families)
        for inst in instruments:
            by_family.setdefault(inst.name, []).append(inst)
        lines: list[str] = []
        for name in sorted(by_family):
            kind, help_text = families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for inst in by_family[name]:
                if isinstance(inst, Histogram):
                    for le, cum in inst.cumulative():
                        labels = dict(inst.labels)
                        labels["le"] = _fmt_value(le)
                        lines.append(
                            f"{name}_bucket{_format_labels(labels)} {cum}"
                        )
                    label_part = _format_labels(inst.labels)
                    lines.append(
                        f"{name}_sum{label_part} {_fmt_value(inst.sum)}"
                    )
                    lines.append(f"{name}_count{label_part} {inst.count}")
                else:
                    lines.append(
                        f"{name}{_format_labels(inst.labels)} "
                        f"{_fmt_value(inst.read())}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MetricsRegistry {len(self._instruments)} instruments, "
            f"{len(self._families)} families>"
        )


class MetricsFederation:
    """Merge remote registry dumps into one registry under an added label.

    The consumer side of cross-process metrics federation: each call to
    :meth:`ingest` takes a source id (e.g. a shard number) and a
    :meth:`MetricsRegistry.dump_state` payload, and materializes every
    instrument in the target registry with ``{label: source}`` appended
    to its labels — so a scrape of the router registry carries
    ``repro_service_requests_total{shard="3"}`` next to the router's own
    unlabeled series.

    **Monotonicity across restarts**: a restarted worker's counters
    restart from their recovered (usually zero) values.  The federation
    keeps a per-series baseline — when an ingested counter (or histogram
    count) goes *backwards*, the previous raw value is folded into a
    standing offset, so the exported series never decreases.  This is
    the PR 5 harvest invariant (``_view_totals``) extended across the
    process boundary.  Gauges are point-in-time and overwrite.
    """

    def __init__(self, registry: MetricsRegistry, label: str = "shard"
                 ) -> None:
        self.registry = registry
        self.label = label
        self._baselines: dict[tuple, dict] = {}

    def ingest(self, source, state: list[dict]) -> None:
        """Merge one source's ``dump_state()`` payload (see above)."""
        for item in state:
            labels = dict(item.get("labels") or {})
            labels[self.label] = str(source)
            name = item["name"]
            kind = item["kind"]
            key = (name, tuple(sorted(labels.items())))
            try:
                if kind == "histogram":
                    self._ingest_histogram(key, name, item, labels)
                elif kind == "counter":
                    self._ingest_counter(key, name, item, labels)
                else:
                    inst = self.registry.gauge(
                        name, item.get("help", ""), labels=labels
                    )
                    inst._fn = None
                    inst._value = float(item["value"])
            except ValueError:
                # Kind conflict with a locally-registered family; skip
                # the series rather than poisoning the scrape.
                logger.warning(
                    "federation skipped %s{%s=%s}: kind conflict",
                    name, self.label, source,
                )

    def _ingest_counter(self, key: tuple, name: str, item: dict,
                        labels: dict) -> None:
        inst = self.registry.counter(
            name, item.get("help", ""), labels=labels
        )
        base = self._baselines.setdefault(key, {"offset": 0.0, "last": 0.0})
        raw = float(item["value"])
        if raw < base["last"]:  # source restarted: fold in the old total
            base["offset"] += base["last"]
        base["last"] = raw
        inst._fn = None
        inst._value = base["offset"] + raw

    def _ingest_histogram(self, key: tuple, name: str, item: dict,
                          labels: dict) -> None:
        inst = self.registry.histogram(
            name, item.get("help", ""),
            buckets=item["buckets"], labels=labels,
        )
        counts = list(item["counts"])
        if len(counts) != len(inst._counts):  # bucket layout drifted
            return
        base = self._baselines.setdefault(key, {
            "counts": [0] * len(counts), "sum": 0.0, "count": 0,
            "last_counts": [0] * len(counts), "last_sum": 0.0,
            "last_count": 0,
        })
        if item["count"] < base["last_count"]:  # source restarted
            base["counts"] = [
                b + lc for b, lc in zip(base["counts"], base["last_counts"])
            ]
            base["sum"] += base["last_sum"]
            base["count"] += base["last_count"]
        base["last_counts"] = counts
        base["last_sum"] = float(item["sum"])
        base["last_count"] = int(item["count"])
        inst._counts = [b + c for b, c in zip(base["counts"], counts)]
        inst._sum = base["sum"] + float(item["sum"])
        inst._count = base["count"] + int(item["count"])


#: A process-wide default registry for callers that want one shared
#: surface.  Components never register here implicitly — each
#: :class:`~repro.service.SelectionService` builds its own registry by
#: default (callback instruments are bound to one live instance, and
#: get-or-create semantics would cross-wire two services) — but embedders
#: can pass ``registry=REGISTRY`` everywhere to get a single scrape.
REGISTRY = MetricsRegistry()
