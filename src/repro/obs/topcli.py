"""``repro-top``: live health summary from a Prometheus exposition.

Reads the merged router exposition — a ``repro-serve --metrics-port``
URL, a ``--dump-metrics`` file, or stdin — and renders the operator
view: per-shard health (requests, live leases, occupancy), trunk
headroom, worker restarts, and active SLO burn::

    shard  hosts  active  occup  requests  admitted  rejected
        0      6       3   0.50        11         9         2
        1      6       2   0.33         8         8         0
    trunk: 2 live reservations, 3/8 channels claimed, min headroom 41%
    workers: 2 (restarts: 1)
    slo: admit_latency ok | availability ok | worker_restarts burning
         admit_latency burn 0.2x/300s 0.1x/3600s

``--watch N`` re-fetches and redraws every N seconds (URL sources).
The parser is deliberately small: only the ``name{labels} value`` line
shape the repo's own :meth:`MetricsRegistry.expose_text` emits (plus
comments), which the promtext validator already gates in CI.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.request
from typing import Iterable, Optional

__all__ = ["build_parser", "main", "parse_exposition", "render_status"]

_STATUS_NAMES = {0.0: "ok", 1.0: "burning", 2.0: "paging"}


def parse_exposition(
    text: str,
) -> list[tuple[str, dict, float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Comment/blank lines are skipped; malformed lines are dropped rather
    than fatal (``repro-top`` is a viewer, not a validator — that's
    :mod:`repro.obs.promtext`'s job).
    """
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                label_text, value_text = rest.rsplit("}", 1)
                labels = {}
                for part in label_text.split('",'):
                    key, raw = part.split("=", 1)
                    labels[key.strip()] = raw.strip().strip('"')
            else:
                name, value_text = line.rsplit(None, 1)
                labels = {}
            samples.append((name.strip(), labels, float(value_text)))
        except ValueError:
            continue
    return samples


class _View:
    """Indexed access over parsed samples."""

    def __init__(self, samples: Iterable[tuple[str, dict, float]]) -> None:
        self.samples = list(samples)

    def scalar(self, name: str, default: Optional[float] = None,
               **labels: str) -> Optional[float]:
        for n, ls, v in self.samples:
            if n == name and all(ls.get(k) == w for k, w in labels.items()):
                return v
        return default

    def by_label(self, name: str, label: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for n, ls, v in self.samples:
            if n == name and label in ls:
                out[ls[label]] = v
        return out


def render_status(samples: list[tuple[str, dict, float]]) -> list[str]:
    """The operator view as text lines."""
    view = _View(samples)
    out: list[str] = []

    hosts = view.by_label("repro_shard_hosts", "shard")
    if hosts:
        out.append(
            f"{'shard':>5}  {'hosts':>5}  {'active':>6}  {'occup':>5}  "
            f"{'requests':>8}  {'admitted':>8}  {'rejected':>8}"
        )
        for shard in sorted(hosts, key=lambda s: int(s)):
            active = view.scalar(
                "repro_shard_active_leases", 0.0, shard=shard)
            requests = view.scalar(
                "repro_shard_requests_total", 0.0, shard=shard)
            # Federated from the worker/shard registries (absent on a
            # single-service exposition).
            admitted = view.scalar(
                "repro_service_admitted_total", None, shard=shard)
            rejected = view.scalar(
                "repro_service_rejected_total", None, shard=shard)
            occupancy = active / hosts[shard] if hosts[shard] else 0.0
            out.append(
                f"{shard:>5}  {int(hosts[shard]):>5}  {int(active):>6}  "
                f"{occupancy:>5.2f}  {int(requests):>8}  "
                f"{'-' if admitted is None else int(admitted):>8}  "
                f"{'-' if rejected is None else int(rejected):>8}"
            )

    trunk_active = view.scalar("repro_shard_trunk_active_reservations")
    if trunk_active is not None:
        claimed = view.scalar("repro_shard_trunk_channels_claimed", 0.0)
        links = view.scalar("repro_shard_trunk_links", 0.0)
        headroom = view.scalar(
            "repro_shard_trunk_min_headroom_fraction", 1.0)
        out.append(
            f"trunk: {int(trunk_active)} live reservations, "
            f"{int(claimed)}/{int(links)} channels claimed, "
            f"min headroom {headroom:.0%}"
        )

    workers = view.scalar("repro_shard_workers")
    if workers is not None:
        restarts = view.scalar("repro_shard_worker_restarts_total", 0.0)
        out.append(f"workers: {int(workers)} (restarts: {int(restarts)})")

    # Router-level SLO series only: worker shard services run their own
    # monitors, and those arrive federated with a shard= label.
    statuses = {
        ls["objective"]: v
        for n, ls, v in view.samples
        if n == "repro_slo_status" and "objective" in ls
        and "shard" not in ls
    }
    if statuses:
        out.append("slo: " + " | ".join(
            f"{objective} {_STATUS_NAMES.get(code, f'?{code}')}"
            for objective, code in sorted(statuses.items())
        ))
        for objective in sorted(statuses):
            burns = [
                (ls["window"], v)
                for n, ls, v in view.samples
                if n == "repro_slo_burn_rate"
                and ls.get("objective") == objective
                and "shard" not in ls
            ]
            if any(v > 0.0 for _w, v in burns):
                out.append(
                    f"     {objective} burn " + " ".join(
                        f"{v:.1f}x/{w}" for w, v in sorted(burns)
                    )
                )

    if not out:
        out.append("no repro_* shard/SLO series found in the exposition")
    return out


def _fetch(source: str) -> str:
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        with urllib.request.urlopen(source, timeout=10.0) as resp:
            return resp.read().decode("utf-8", "replace")
    with open(source, "r", encoding="utf-8") as fh:
        return fh.read()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live per-shard health, trunk headroom, and SLO burn "
        "from a repro-serve metrics exposition.",
    )
    parser.add_argument(
        "source",
        help="metrics URL (http://127.0.0.1:PORT/), exposition file, "
        "or - for stdin",
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-fetch and redraw every SECONDS (URL/file sources)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.watch is not None and args.source == "-":
        print("repro-top: --watch needs a re-fetchable source, not stdin",
              file=sys.stderr)
        return 2
    while True:
        try:
            text = _fetch(args.source)
        except OSError as exc:
            print(f"repro-top: cannot read {args.source}: {exc}",
                  file=sys.stderr)
            return 2
        lines = render_status(parse_exposition(text))
        if args.watch is not None:
            print("\x1b[2J\x1b[H", end="")  # clear + home
            print(time.strftime("%H:%M:%S"), args.source)
        for line in lines:
            print(line)
        if args.watch is None:
            return 0
        try:
            time.sleep(max(0.2, args.watch))
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
