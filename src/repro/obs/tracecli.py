"""``repro-trace``: pretty-print and filter trace JSONL.

Reads span records (one JSON object per line, the
:meth:`repro.obs.Tracer.write_jsonl` format), rebuilds each trace tree
from parent ids, and renders it indented with durations and attributes::

    trace 3 (4 spans, 312.4us)
      service.request app='a1' m=4  312.4us ok
        admit  290.1us ok
          stage.snapshot_fetch  12.0us ok
          stage.select  201.7us ok

Filters (``--name``, ``--status``, ``--min-us``, ``--trace``) switch the
output to a flat span listing; ``--summary`` aggregates by span name.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Optional

__all__ = ["build_parser", "load_spans", "main", "render_traces"]


def load_spans(lines: Iterable[str]) -> tuple[list[dict], int]:
    """Parse JSONL lines into span dicts; returns (spans, bad line count)."""
    spans: list[dict] = []
    bad = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            bad += 1
            continue
        if isinstance(rec, dict) and "span" in rec and "name" in rec:
            spans.append(rec)
        else:
            bad += 1
    return spans, bad


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
    return f" {body}"


def _fmt_span(span: dict, indent: int = 0) -> list[str]:
    dur = span.get("duration_us", 0.0)
    lines = [
        f"{'  ' * indent}{span.get('name', '?')}"
        f"{_fmt_attrs(span.get('attrs', {}))}"
        f"  {dur:.1f}us {span.get('status', '?')}"
    ]
    for event in span.get("events", ()):
        lines.append(
            f"{'  ' * (indent + 1)}@ {event.get('name', '?')}"
            f"{_fmt_attrs(event.get('attrs', {}))}"
        )
    return lines


def render_traces(spans: list[dict]) -> list[str]:
    """Indented tree per trace, root spans in start order."""
    by_trace: dict[int, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(span.get("trace", 0), []).append(span)
    out: list[str] = []
    for trace_id in sorted(by_trace):
        members = by_trace[trace_id]
        children: dict[Optional[int], list[dict]] = {}
        ids = {s.get("span") for s in members}
        for span in members:
            parent = span.get("parent")
            # A span whose parent is missing from the file renders as a
            # root rather than vanishing.
            key = parent if parent in ids else None
            children.setdefault(key, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: s.get("start_us", 0.0))
        roots = children.get(None, [])
        total = max((s.get("duration_us", 0.0) for s in roots), default=0.0)
        out.append(
            f"trace {trace_id} ({len(members)} "
            f"span{'s' if len(members) != 1 else ''}, {total:.1f}us)"
        )

        def walk(span: dict, depth: int) -> None:
            out.extend(_fmt_span(span, depth))
            for child in children.get(span.get("span"), ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
    return out


def _summarize(spans: list[dict]) -> list[str]:
    agg: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for span in spans:
        name = span.get("name", "?")
        agg.setdefault(name, []).append(span.get("duration_us", 0.0))
        if span.get("status") != "ok":
            errors[name] = errors.get(name, 0) + 1
    width = max((len(n) for n in agg), default=4)
    out = [
        f"{'name':<{width}}  {'count':>6}  {'total_us':>10}  "
        f"{'mean_us':>9}  {'max_us':>9}  {'errors':>6}"
    ]
    for name in sorted(agg, key=lambda n: -sum(agg[n])):
        durations = agg[name]
        out.append(
            f"{name:<{width}}  {len(durations):>6}  "
            f"{sum(durations):>10.1f}  "
            f"{sum(durations) / len(durations):>9.1f}  "
            f"{max(durations):>9.1f}  {errors.get(name, 0):>6}"
        )
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Pretty-print and filter trace JSONL written by "
        "--trace-out (repro-serve) or Tracer.write_jsonl().",
    )
    parser.add_argument(
        "path",
        help="trace JSONL file, or - for stdin",
    )
    parser.add_argument(
        "--trace", type=int, default=None, metavar="ID",
        help="only this trace tree",
    )
    parser.add_argument(
        "--name", default=None, metavar="SUBSTR",
        help="flat listing of spans whose name contains SUBSTR",
    )
    parser.add_argument(
        "--status", choices=("ok", "error"), default=None,
        help="flat listing of spans with this status",
    )
    parser.add_argument(
        "--shard", type=int, default=None, metavar="S",
        help="flat listing of spans whose shard= attribute is S "
        "(worker-side spans adopted across the process boundary)",
    )
    parser.add_argument(
        "--min-us", type=float, default=None, metavar="US",
        help="flat listing of spans at least US microseconds long",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="aggregate durations by span name instead of printing trees",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N traces (tree mode) or N spans (flat mode)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.path == "-":
        lines: Iterable[str] = sys.stdin
        spans, bad = load_spans(lines)
    else:
        try:
            with open(args.path, "r", encoding="utf-8") as fh:
                spans, bad = load_spans(fh)
        except OSError as exc:
            print(f"repro-trace: cannot read {args.path}: {exc}",
                  file=sys.stderr)
            return 2
    if bad:
        print(f"repro-trace: skipped {bad} malformed line(s)",
              file=sys.stderr)
    if args.trace is not None:
        spans = [s for s in spans if s.get("trace") == args.trace]
    if not spans:
        print("no spans")
        return 0

    if args.summary:
        for line in _summarize(spans):
            print(line)
        return 0

    flat = (
        args.name is not None
        or args.status is not None
        or args.min_us is not None
        or args.shard is not None
    )
    if flat:
        selected = [
            s for s in spans
            if (args.name is None or args.name in s.get("name", ""))
            and (args.status is None or s.get("status") == args.status)
            and (args.min_us is None
                 or s.get("duration_us", 0.0) >= args.min_us)
            and (args.shard is None
                 or (s.get("attrs") or {}).get("shard") == args.shard)
        ]
        selected.sort(key=lambda s: -s.get("duration_us", 0.0))
        if args.limit is not None:
            selected = selected[: args.limit]
        for span in selected:
            prefix = f"[{span.get('trace')}:{span.get('span')}] "
            print(prefix + _fmt_span(span)[0])
        if not selected:
            print("no spans match")
        return 0

    lines_out = render_traces(spans)
    if args.limit is not None:
        shown = 0
        clipped: list[str] = []
        for line in lines_out:
            if line.startswith("trace "):
                shown += 1
                if shown > args.limit:
                    break
            clipped.append(line)
        lines_out = clipped
    for line in lines_out:
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
