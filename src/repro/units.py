"""Unit conventions and conversion helpers used throughout the library.

Conventions (SI, keep them straight once and never again):

- **bandwidth / capacity**: bits per second (``bps``).  The paper quotes
  link speeds in Mbps; use :data:`Mbps` to convert (``100 * Mbps``).
- **data size**: bytes.  Messages and transfers are sized in bytes; the
  fabric converts to bits internally.
- **time**: seconds of simulated time.
- **compute work**: abstract "operations"; hosts have a capacity in
  operations/second, so work/capacity is seconds of dedicated CPU.
"""

from __future__ import annotations

__all__ = [
    "Kbps",
    "Mbps",
    "Gbps",
    "KB",
    "MB",
    "GB",
    "BITS_PER_BYTE",
    "transfer_time",
]

#: One kilobit per second, in bps.
Kbps = 1e3
#: One megabit per second, in bps.
Mbps = 1e6
#: One gigabit per second, in bps.
Gbps = 1e9

#: One kibibyte, in bytes (we use binary sizes for data, like the apps do).
KB = 1024
#: One mebibyte, in bytes.
MB = 1024 * 1024
#: One gibibyte, in bytes.
GB = 1024 * 1024 * 1024

BITS_PER_BYTE = 8


def transfer_time(size_bytes: float, bandwidth_bps: float, latency_s: float = 0.0) -> float:
    """Ideal time to move ``size_bytes`` over a path.

    ``latency_s`` is added once (store-and-forward effects are folded into
    per-link latencies by the fabric).

    >>> transfer_time(1_000_000, 8e6)  # 1 MB over 8 Mbps
    1.0
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return latency_s + (size_bytes * BITS_PER_BYTE) / bandwidth_bps
