"""Max-min fair bandwidth allocation (progressive filling).

The flow-level network model assigns each active flow a rate such that the
allocation is *max-min fair*: no flow can be given more without taking from
a flow with an equal or smaller rate.  This is the classic idealization of
TCP-like sharing on a network of links, and is how our simulated fabric
decides the instantaneous throughput of concurrent transfers.

The algorithm is progressive filling: grow all unfrozen flows' rates at the
same speed; when a link's capacity is exhausted, freeze every flow crossing
it; repeat until all flows are frozen.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

__all__ = ["max_min_fair"]


def max_min_fair(
    flows: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flows:
        flow id → sequence of channel ids the flow crosses.  A flow with an
        empty route (e.g. loopback) is unconstrained and gets ``inf``.
    capacities:
        channel id → capacity (bps).  Every channel referenced by a flow
        must be present.

    Returns
    -------
    dict
        flow id → allocated rate (bps).

    Raises
    ------
    KeyError
        If a flow references an unknown channel.
    ValueError
        If any referenced capacity is negative.

    Examples
    --------
    Three flows through one 90 Mbps link share it equally:

    >>> max_min_fair({1: ["l"], 2: ["l"], 3: ["l"]}, {"l": 90e6})
    {1: 30000000.0, 2: 30000000.0, 3: 30000000.0}
    """
    # Validate and collect the channels actually in use.
    used: dict[Hashable, list[Hashable]] = {}
    for fid, route in flows.items():
        for ch in route:
            if ch not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown channel {ch!r}")
            if capacities[ch] < 0:
                raise ValueError(f"negative capacity on channel {ch!r}")
            used.setdefault(ch, []).append(fid)

    rates: dict[Hashable, float] = {}
    active = {fid for fid, route in flows.items() if route}
    for fid in flows:
        if fid not in active:
            rates[fid] = float("inf")

    remaining = {ch: float(capacities[ch]) for ch in used}
    live_count = {ch: len(fids) for ch, fids in used.items()}

    while active:
        # The next channel to saturate bounds the common increment.
        increment = min(
            remaining[ch] / live_count[ch]
            for ch in used
            if live_count[ch] > 0
        )
        # Apply the increment to every active flow and drain channels.
        saturated: list[Hashable] = []
        for ch in used:
            if live_count[ch] > 0:
                remaining[ch] -= increment * live_count[ch]
                if remaining[ch] <= 1e-9:
                    remaining[ch] = 0.0
                    saturated.append(ch)
        newly_frozen: set[Hashable] = set()
        for ch in saturated:
            for fid in used[ch]:
                if fid in active:
                    newly_frozen.add(fid)
        for fid in active:
            rates[fid] = rates.get(fid, 0.0) + increment
        if not saturated:  # pragma: no cover - numerical safety valve
            break
        for fid in newly_frozen:
            active.discard(fid)
            for ch in flows[fid]:
                live_count[ch] -= 1
    return rates
