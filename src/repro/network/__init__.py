"""Flow-level network + processor-sharing host simulator.

Our substitute for the paper's physical CMU testbed: hosts execute work
under processor sharing (yielding honest UNIX-style load averages), and
transfers are flows whose instantaneous rates follow max-min fair sharing
across directional link channels.  See DESIGN.md §2 for why this
substitution preserves the quantities the selection algorithms consume.
"""

from .cluster import Cluster
from .fabric import ChannelId, Fabric, Flow
from .fairshare import max_min_fair
from .host import ComputeTask, Host, HostDownError

__all__ = [
    "ChannelId",
    "Cluster",
    "ComputeTask",
    "Fabric",
    "Flow",
    "Host",
    "HostDownError",
    "max_min_fair",
]
