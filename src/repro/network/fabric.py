"""The flow-level network fabric.

Transfers between nodes become *flows* along statically routed paths.  At
any instant the rate of every flow is the max-min fair allocation over the
directional link channels it crosses (:mod:`repro.network.fairshare`); when
flows start or finish the allocation is recomputed and the pending
completion re-scheduled — the standard flow-level network simulation
technique, which captures exactly what matters to the paper (who shares
which link, and the resulting available bandwidth) without per-packet cost.

Each topology link is modelled as two directional channels (full duplex,
the default) or one shared channel (half duplex, ``link.attrs["duplex"] ==
"half"``).  Per-channel byte counters are maintained for the simulated SNMP
agents in :mod:`repro.remos.snmp`.
"""

from __future__ import annotations

from typing import Optional

from ..des.events import Event
from ..des.simulator import Simulator
from ..topology.graph import TopologyGraph
from ..topology.routing import RoutingTable
from ..units import BITS_PER_BYTE
from .fairshare import max_min_fair

__all__ = ["Fabric", "Flow", "ChannelId"]

#: A directional channel: (canonical link key, direction tag).
ChannelId = tuple[frozenset, str]


class Flow:
    """One in-flight transfer.

    ``done`` fires with the flow's elapsed transfer time when the last byte
    drains.  ``rate`` is the currently allocated bandwidth (bps).
    """

    __slots__ = (
        "fid", "src", "dst", "size_bytes", "remaining_bytes",
        "channels", "rate", "done", "started_at",
    )

    def __init__(
        self,
        fid: int,
        src: str,
        dst: str,
        size_bytes: float,
        channels: list[ChannelId],
        done: Event,
        started_at: float,
    ) -> None:
        self.fid = fid
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.remaining_bytes = float(size_bytes)
        self.channels = channels
        self.rate = 0.0
        self.done = done
        self.started_at = started_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Flow {self.src}->{self.dst} "
            f"{self.remaining_bytes:.0f}/{self.size_bytes:.0f}B>"
        )


class Fabric:
    """Flow-level simulator for one topology.

    Parameters
    ----------
    sim:
        Simulation kernel.
    graph:
        The *physical* topology; ``maxbw`` per link is the channel capacity.
        The graph is not mutated — current utilization lives in the fabric.
    routing:
        Static routes; defaults to shortest-path routing over ``graph``.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: TopologyGraph,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.sim = sim
        self.graph = graph
        self.routing = routing or RoutingTable(graph)
        self._flows: dict[int, Flow] = {}
        self._next_fid = 0
        self._capacities: dict[ChannelId, float] = {}
        self._octets: dict[ChannelId, float] = {}
        for link in graph.links():
            if link.attrs.get("duplex") == "half":
                cid = (link.key, "shared")
                self._capacities[cid] = link.maxbw
                self._octets[cid] = 0.0
            else:
                for dst in (link.u, link.v):
                    cid = (link.key, dst)
                    self._capacities[cid] = link.maxbw
                    self._octets[cid] = 0.0
        self._last_settle = sim.now
        self._wake: Optional[Event] = None

    # -- channel bookkeeping ---------------------------------------------------
    def channel_for(self, u: str, v: str) -> ChannelId:
        """The channel carrying traffic from ``u`` to ``v`` over link u--v."""
        link = self.graph.link(u, v)
        if link.attrs.get("duplex") == "half":
            return (link.key, "shared")
        return (link.key, v)

    def channels(self) -> list[ChannelId]:
        """All channel ids."""
        return list(self._capacities)

    def capacity(self, cid: ChannelId) -> float:
        return self._capacities[cid]

    def octet_counter(self, cid: ChannelId) -> float:
        """Cumulative bytes carried by the channel (SNMP ifOutOctets-like)."""
        self._settle()
        return self._octets[cid]

    def used_bandwidth(self, cid: ChannelId) -> float:
        """Sum of flow rates currently crossing the channel (bps)."""
        return sum(
            f.rate for f in self._flows.values() if cid in f.channels
        )

    def available_bandwidth(self, cid: ChannelId) -> float:
        """Capacity minus instantaneous use (bps) — the ground truth."""
        return max(0.0, self._capacities[cid] - self.used_bandwidth(cid))

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def set_capacity(self, cid: ChannelId, capacity_bps: float) -> None:
        """Change a channel's capacity at runtime (degradation/repair).

        Models events outside the flow population — a link renegotiating a
        lower rate, an operator cap, partial failure (capacity 0 stalls
        flows until repair).  In-flight transfers are settled at their old
        rates first, then re-allocated under the new capacity.
        """
        if cid not in self._capacities:
            raise KeyError(f"unknown channel {cid!r}")
        if capacity_bps < 0:
            raise ValueError(f"capacity cannot be negative: {capacity_bps}")
        self._settle()
        self._capacities[cid] = float(capacity_bps)
        self._reallocate()

    def degrade_link(self, u: str, v: str, capacity_bps: float) -> None:
        """Set both directions of link ``u``--``v`` to ``capacity_bps``."""
        link = self.graph.link(u, v)
        if link.attrs.get("duplex") == "half":
            self.set_capacity((link.key, "shared"), capacity_bps)
        else:
            self.set_capacity((link.key, link.u), capacity_bps)
            self.set_capacity((link.key, link.v), capacity_bps)

    def restore_link(self, u: str, v: str) -> None:
        """Restore link ``u``--``v`` to its nominal peak capacity."""
        self.degrade_link(u, v, self.graph.link(u, v).maxbw)

    def fail_link(self, u: str, v: str) -> None:
        """Take link ``u``--``v`` down (capacity 0: flows stall until repair)."""
        self.degrade_link(u, v, 0.0)

    def link_up(self, u: str, v: str) -> bool:
        """True while every channel of link ``u``--``v`` has capacity."""
        link = self.graph.link(u, v)
        if link.attrs.get("duplex") == "half":
            return self._capacities[(link.key, "shared")] > 0
        return all(
            self._capacities[(link.key, dst)] > 0 for dst in (link.u, link.v)
        )

    # -- transfers ---------------------------------------------------------------
    def transfer(self, src: str, dst: str, size_bytes: float) -> Event:
        """Send ``size_bytes`` from ``src`` to ``dst``.

        Returns an event firing with the transfer's elapsed time.  Transfers
        to self complete after zero time; zero-byte transfers complete after
        the path latency only.  Fails immediately if the nodes are
        disconnected.
        """
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        done = self.sim.event()
        if src == dst:
            done.succeed(0.0)
            return done
        path = self.routing.route(src, dst)
        if path is None:
            done.fail(ConnectionError(f"{src!r} and {dst!r} are disconnected"))
            return done
        latency = sum(
            self.graph.link(a, b).latency for a, b in zip(path, path[1:])
        )
        channels = [self.channel_for(a, b) for a, b in zip(path, path[1:])]
        start = self.sim.now

        if size_bytes == 0:
            latency_ev = self.sim.timeout(latency)
            latency_ev.callbacks.append(
                lambda _ev: done.succeed(self.sim.now - start)
            )
            return done

        def _begin(_ev: Event) -> None:
            self._settle()
            fid = self._next_fid
            self._next_fid += 1
            flow = Flow(fid, src, dst, size_bytes, channels, done, start)
            self._flows[fid] = flow
            self._reallocate()

        head = self.sim.timeout(latency)
        head.callbacks.append(_begin)
        return done

    # -- internals ------------------------------------------------------------
    def _settle(self) -> None:
        """Drain bytes at current rates up to ``sim.now``."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            return
        for flow in self._flows.values():
            moved_bytes = flow.rate * elapsed / BITS_PER_BYTE
            flow.remaining_bytes -= moved_bytes
            for cid in flow.channels:
                self._octets[cid] += moved_bytes
        self._last_settle = now

    #: Flows with less than this many bytes left are complete.
    _BYTE_EPS = 1e-6
    #: ... or whose drain time is below the clock's useful resolution.
    #: (At t ~ 1e3 s a float64 ulp is ~2e-13 s; scheduling a wake closer
    #: than that would not advance the clock and would spin forever.)
    _TIME_EPS = 1e-9

    def _reallocate(self) -> None:
        """Recompute max-min rates and re-arm the next completion."""
        finished = [
            f
            for f in self._flows.values()
            if f.remaining_bytes <= self._BYTE_EPS
            or (
                f.rate > 0
                and f.remaining_bytes * BITS_PER_BYTE / f.rate <= self._TIME_EPS
            )
        ]
        for flow in finished:
            del self._flows[flow.fid]
            flow.remaining_bytes = 0.0
            flow.done.succeed(self.sim.now - flow.started_at)

        self._wake = None
        if not self._flows:
            return

        rates = max_min_fair(
            {fid: f.channels for fid, f in self._flows.items()},
            self._capacities,
        )
        for fid, flow in self._flows.items():
            flow.rate = rates[fid]

        times = [
            f.remaining_bytes * BITS_PER_BYTE / f.rate
            for f in self._flows.values()
            if f.rate > 0
        ]
        if not times:  # pragma: no cover - zero-capacity channels are rejected
            return
        # Floor the delay at the completion epsilon so the clock always
        # advances; the finished-test above absorbs the residual bytes.
        next_in = max(min(times), self._TIME_EPS)
        wake = self.sim.timeout(next_in)
        self._wake = wake

        def _on_wake(_ev: Event, me: Event = wake) -> None:
            if self._wake is not me:
                return
            self._wake = None
            self._settle()
            self._reallocate()

        wake.callbacks.append(_on_wake)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Fabric flows={len(self._flows)}>"
