"""Processor-sharing compute hosts with UNIX-style load averages.

A :class:`Host` executes *compute tasks* (abstract "operations" of work)
under processor sharing: with ``k`` runnable tasks, each progresses at
``capacity / k`` ops/second — the same equal-share assumption behind the
paper's ``cpu = 1/(1+load)`` formula (§3.1: "the processor will be equally
shared by those processes and the user application process").

The load average is the exponentially damped run-queue length sampled the
way UNIX kernels do, so the simulated Remos reports to selection algorithms
exactly the quantity the real one did — including its lag behind sudden
load changes.
"""

from __future__ import annotations

import math
from typing import Optional

from ..des.events import Event
from ..des.simulator import Simulator

__all__ = ["Host", "ComputeTask", "HostDownError"]


class HostDownError(RuntimeError):
    """Raised when work is submitted to a crashed host."""


class ComputeTask:
    """One unit of runnable work on a host.

    Created through :meth:`Host.run`; the task's ``done`` event fires when
    the work completes.  Tasks can be aborted (e.g. a migrating application
    cancels in-flight work).
    """

    __slots__ = ("host", "total_ops", "remaining_ops", "done", "started_at")

    def __init__(self, host: "Host", ops: float) -> None:
        self.host = host
        self.total_ops = float(ops)
        self.remaining_ops = float(ops)
        self.done: Event = host.sim.event()
        self.started_at = host.sim.now

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def pending_ops(self) -> float:
        """Work left, settled to the current instant.

        ``remaining_ops`` is only advanced lazily at host events; callers
        sampling progress mid-run (e.g. a migration engine checkpointing a
        task) must use this instead of reading the attribute directly.
        """
        self.host._settle()
        return self.remaining_ops

    def abort(self) -> None:
        """Cancel the task; ``done`` fails with ``InterruptedError``."""
        self.host._abort(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ComputeTask {self.remaining_ops:.0f}/{self.total_ops:.0f} ops "
            f"on {self.host.name}>"
        )


class Host:
    """A compute node executing tasks under processor sharing.

    Parameters
    ----------
    sim:
        The simulation kernel.
    name:
        Node name (matches the topology graph's compute node).
    capacity:
        Peak execution rate in ops/second.
    load_tau:
        Time constant (seconds) of the exponentially damped load average —
        60 s mimics the UNIX 1-minute load average.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float = 1.0,
        load_tau: float = 60.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if load_tau <= 0:
            raise ValueError(f"load_tau must be positive, got {load_tau}")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.load_tau = float(load_tau)
        self._tasks: list[ComputeTask] = []
        self._last_settle = sim.now
        self._load_avg = 0.0
        self._wake: Optional[Event] = None
        self._busy_time = 0.0  # integrated seconds with >=1 task (utilization)
        self._up = True

    # -- public API ----------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        """Number of runnable tasks right now."""
        return len(self._tasks)

    @property
    def up(self) -> bool:
        """False while the host is crashed."""
        return self._up

    def fail(self) -> None:
        """Crash the host: abort all running tasks, refuse new work.

        Idempotent.  Every in-flight task's ``done`` event fails with
        ``InterruptedError`` (defused, so unobserved tasks don't take the
        kernel down — background jobs on a crashed machine just vanish).
        """
        if not self._up:
            return
        self._settle()
        self._up = False
        for task in list(self._tasks):
            self._abort(task)
        # A dead machine has an empty run queue; freeze the load average at
        # zero so a post-recovery poll doesn't report pre-crash load.
        self._load_avg = 0.0

    def recover(self) -> None:
        """Bring a crashed host back up (fresh boot: empty queue, zero load)."""
        if self._up:
            return
        self._up = True
        self._last_settle = self.sim.now
        self._load_avg = 0.0

    @property
    def load_average(self) -> float:
        """Damped run-queue length, updated to the current instant."""
        self._settle()
        return self._load_avg

    @property
    def busy_time(self) -> float:
        """Total simulated seconds this host had at least one task."""
        self._settle()
        return self._busy_time

    def current_rate(self) -> float:
        """Per-task execution rate right now (ops/s)."""
        k = len(self._tasks)
        return self.capacity if k == 0 else self.capacity / k

    def set_capacity(self, capacity: float) -> None:
        """Change the host's execution rate at runtime (e.g. thermal
        throttling, DVFS).  Running tasks are settled at the old rate
        first, then proceed at the new one.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._settle()
        self.capacity = float(capacity)
        self._reschedule()

    def run(self, ops: float) -> ComputeTask:
        """Submit ``ops`` operations of work; returns the running task.

        Yield ``task.done`` from a process to wait for completion.  Work of
        zero ops completes immediately.
        """
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        if not self._up:
            raise HostDownError(f"host {self.name!r} is down")
        self._settle()
        task = ComputeTask(self, ops)
        if ops == 0:
            task.done.succeed(0.0)
            return task
        self._tasks.append(task)
        self._reschedule()
        return task

    def estimated_seconds(self, ops: float) -> float:
        """Time ``ops`` would take at the *current* sharing level.

        The quantity ``1/(1+load)`` predicts: dedicated time divided by the
        available fraction.
        """
        k = len(self._tasks) + 1
        return ops / (self.capacity / k)

    # -- internals ------------------------------------------------------------
    def _settle(self) -> None:
        """Advance task progress and the load average to ``sim.now``."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            return
        k = len(self._tasks)
        if k > 0:
            rate = self.capacity / k
            progress = rate * elapsed
            for task in self._tasks:
                task.remaining_ops -= progress
            self._busy_time += elapsed
        # Exact damping for a constant run-queue length over the interval.
        decay = math.exp(-elapsed / self.load_tau)
        self._load_avg = k + (self._load_avg - k) * decay
        self._last_settle = now

    #: Tasks with less remaining work than this are complete.
    _OPS_EPS = 1e-9
    #: ... or whose drain time is below the clock's float resolution
    #: (scheduling a wake closer than this would not advance the clock).
    _TIME_EPS = 1e-9

    def _complete_finished(self) -> None:
        rate = self.capacity / max(len(self._tasks), 1)
        still: list[ComputeTask] = []
        for task in self._tasks:
            if (
                task.remaining_ops <= self._OPS_EPS
                or task.remaining_ops / rate <= self._TIME_EPS
            ):
                task.remaining_ops = 0.0
                task.done.succeed(self.sim.now - task.started_at)
            else:
                still.append(task)
        self._tasks = still

    def _reschedule(self) -> None:
        """(Re)arm the wake event at the next task completion."""
        self._complete_finished()
        if self._wake is not None:
            # Invalidate the stale wake-up; the callback checks identity.
            self._wake = None
        if not self._tasks:
            return
        rate = self.capacity / len(self._tasks)
        next_in = min(t.remaining_ops for t in self._tasks) / rate
        wake = self.sim.timeout(max(next_in, self._TIME_EPS))
        self._wake = wake

        def _on_wake(_ev: Event, me: Event = wake) -> None:
            if self._wake is not me:
                return  # superseded by a later membership change
            self._wake = None
            self._settle()
            self._reschedule()

        wake.callbacks.append(_on_wake)

    def _abort(self, task: ComputeTask) -> None:
        if task.finished:
            raise RuntimeError("cannot abort a finished task")
        self._settle()
        self._tasks.remove(task)
        exc = InterruptedError(f"task aborted on {self.name}")
        task.done.fail(exc)
        task.done.defuse()
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name} tasks={len(self._tasks)}>"
