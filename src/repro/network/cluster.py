"""The simulated cluster: hosts + fabric behind one facade.

This is our stand-in for the paper's physical testbed.  A
:class:`Cluster` owns a :class:`~repro.network.host.Host` per compute node
and a :class:`~repro.network.fabric.Fabric` for the links, all driven by a
single DES kernel.  Applications, load/traffic generators, and the Remos
collector all operate against this object.
"""

from __future__ import annotations

from typing import Optional

from ..des.events import Event
from ..des.simulator import Simulator
from ..topology.graph import TopologyGraph
from ..topology.routing import RoutingTable
from .fabric import Fabric
from .host import ComputeTask, Host

__all__ = ["Cluster"]


class Cluster:
    """Hosts and network for one topology, on one simulator.

    Parameters
    ----------
    sim:
        The simulation kernel.
    graph:
        The physical topology.  Compute nodes become hosts whose peak rate
        is ``node.compute_capacity * base_capacity`` ops/s.
    base_capacity:
        Ops/second of a capacity-1.0 node (calibration knob).
    routing:
        Static routes (defaults to shortest path).
    load_tau:
        Load-average damping constant passed to every host.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: TopologyGraph,
        base_capacity: float = 1.0,
        routing: Optional[RoutingTable] = None,
        load_tau: float = 60.0,
    ) -> None:
        self.sim = sim
        self.graph = graph
        self.routing = routing or RoutingTable(graph)
        self.fabric = Fabric(sim, graph, self.routing)
        self.hosts: dict[str, Host] = {
            node.name: Host(
                sim,
                node.name,
                capacity=node.compute_capacity * base_capacity,
                load_tau=load_tau,
            )
            for node in graph.compute_nodes()
        }

    def host(self, name: str) -> Host:
        """The host for compute node ``name``."""
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"no compute host {name!r}") from None

    # -- failure state --------------------------------------------------------
    def node_is_up(self, name: str) -> bool:
        """True unless ``name`` is a crashed compute host.

        Network nodes (switches/routers) are always up in this model; link
        failures are expressed through the fabric's channel capacities.
        """
        host = self.hosts.get(name)
        return host.up if host is not None else True

    def fail_node(self, name: str) -> None:
        """Crash compute node ``name``.

        The host aborts its tasks and refuses new work, and every incident
        link goes down (a dead machine's NIC answers nobody), stalling
        in-flight flows that touch it.  Its SNMP agents stop answering, so
        Remos learns of the crash only through missed polls — exactly the
        partial information a real monitor has.
        """
        self.host(name).fail()
        for link in self.graph.incident_links(name):
            self.fabric.fail_link(link.u, link.v)

    def recover_node(self, name: str) -> None:
        """Bring a crashed node back (fresh boot, incident links restored)."""
        self.host(name).recover()
        for link in self.graph.incident_links(name):
            self.fabric.restore_link(link.u, link.v)

    def compute(self, name: str, ops: float) -> ComputeTask:
        """Run ``ops`` operations on host ``name`` (processor-shared)."""
        return self.host(name).run(ops)

    def transfer(self, src: str, dst: str, size_bytes: float) -> Event:
        """Move ``size_bytes`` from ``src`` to ``dst`` over the fabric."""
        return self.fabric.transfer(src, dst, size_bytes)

    def snapshot(self) -> TopologyGraph:
        """Ground-truth topology snapshot (oracle, zero measurement lag).

        Compute nodes carry the hosts' *instantaneous damped* load average;
        links carry capacity minus the instantaneous flow allocation.  The
        Remos substrate (:mod:`repro.remos`) provides the realistic,
        measurement-based alternative — tests use this oracle to separate
        algorithm behaviour from measurement noise.
        """
        g = self.graph.copy()
        for name, host in self.hosts.items():
            g.node(name).load_average = host.load_average
            if not host.up:
                g.node(name).attrs["down"] = True
        for link in g.links():
            phys = self.graph.link(link.u, link.v)
            if phys.attrs.get("duplex") == "half":
                avail = self.fabric.available_bandwidth((phys.key, "shared"))
                link.set_available(avail)
            else:
                for dst in (phys.u, phys.v):
                    avail = self.fabric.available_bandwidth((phys.key, dst))
                    link.set_available(avail, direction=dst)
        return g

    def topology(self) -> TopologyGraph:
        """Alias so a Cluster satisfies the TopologyProvider protocol."""
        return self.snapshot()
