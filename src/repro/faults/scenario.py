"""Randomized fault plans for experiments and property tests.

:func:`random_fault_plan` draws a reproducible mix of node crashes, link
flaps, agent outages and counter resets over a time horizon from a numpy
``Generator`` — the fault-model analogue of the background load/traffic
generators of §4.2.  The plan never crashes more than a configurable
fraction of the compute nodes at once, so feasible selections keep
existing and experiments measure *degraded* operation, not total outage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..network.cluster import Cluster
from .injector import AgentOutage, CounterReset, Fault, LinkFlap, NodeCrash

__all__ = ["random_fault_plan"]


def random_fault_plan(
    cluster: Cluster,
    rng: np.random.Generator,
    horizon: float,
    start: float = 0.0,
    n_crashes: int = 1,
    n_flaps: int = 1,
    n_outages: int = 2,
    n_resets: int = 1,
    max_down_fraction: float = 0.34,
    mean_downtime: Optional[float] = None,
) -> list[Fault]:
    """Draw a reproducible fault plan for ``cluster`` over ``[start, start+horizon)``.

    Parameters
    ----------
    cluster:
        Target cluster (names are drawn from its hosts and links).
    rng:
        Random stream; the plan is a pure function of it.
    horizon:
        Length of the injection window in seconds.
    start:
        Absolute time the window opens (fault times are >= start).
    n_crashes / n_flaps / n_outages / n_resets:
        How many faults of each kind to draw.
    max_down_fraction:
        At most this fraction of compute nodes is ever crashed (crash
        targets are distinct; the cap bounds simultaneous downtime).
    mean_downtime:
        Mean crash/outage duration (default: a quarter of the horizon).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if not 0 < max_down_fraction <= 1:
        raise ValueError(
            f"max_down_fraction must be in (0, 1], got {max_down_fraction}"
        )
    hosts = sorted(cluster.hosts)
    devices = sorted(n.name for n in cluster.graph.nodes())
    links = sorted(
        (link.u, link.v) for link in cluster.graph.links()
    )
    mean_down = mean_downtime if mean_downtime is not None else horizon / 4.0

    def when() -> float:
        return float(start + rng.uniform(0.0, horizon))

    plan: list[Fault] = []
    max_crashed = max(1, int(len(hosts) * max_down_fraction))
    crash_targets = [
        str(h)
        for h in rng.choice(
            hosts, size=min(n_crashes, max_crashed), replace=False
        )
    ]
    for host in crash_targets:
        # Half the crashes recover inside the horizon, half persist.
        downtime = (
            float(rng.exponential(mean_down)) + 1.0
            if rng.random() < 0.5
            else None
        )
        plan.append(NodeCrash(node=host, at=when(), downtime=downtime))

    for _ in range(n_flaps):
        if not links:
            break
        u, v = links[int(rng.integers(len(links)))]
        plan.append(
            LinkFlap(
                u=u,
                v=v,
                at=when(),
                downtime=float(rng.uniform(1.0, mean_down + 1.0)),
                cycles=int(rng.integers(1, 4)),
                gap=float(rng.uniform(1.0, 10.0)),
            )
        )

    for _ in range(n_outages):
        device = devices[int(rng.integers(len(devices)))]
        plan.append(
            AgentOutage(
                device=device,
                at=when(),
                duration=float(rng.exponential(mean_down)) + 1.0,
            )
        )

    for _ in range(n_resets):
        device = devices[int(rng.integers(len(devices)))]
        plan.append(CounterReset(device=device, at=when()))

    plan.sort(key=lambda f: f.at)
    return plan
