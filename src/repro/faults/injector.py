"""Fault injection for the simulated cluster and its monitoring plane.

The injector turns the failure modes a shared network actually exhibits
into scheduled DES events:

- **Agent outages** — SNMP polls to a device go unanswered for a window
  (the collector retries, then marks resources stale);
- **Node crashes / recoveries** — a compute host aborts its work, drops
  off the network, and stops answering its agents;
- **Link flaps** — a link's capacity drops to zero and comes back,
  possibly repeatedly;
- **Counter resets** — a device reboot restarts its octet counters at
  zero (and bounded counters wrap on their own under traffic).

Faults are plain frozen dataclasses (a *plan* is just a list of them), so
scenarios are serializable-in-spirit, reproducible, and easy to generate
randomly (:mod:`repro.faults.scenario`).  Injection goes through the same
public surfaces operators have (``Cluster.fail_node``,
``Fabric.fail_link``, agent silencing) — no hidden back-doors into the
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

from ..network.cluster import Cluster
from ..obs.trace import NULL_TRACER
from ..remos.collector import Collector

__all__ = [
    "AgentOutage",
    "CounterReset",
    "Fault",
    "FaultInjector",
    "LinkFlap",
    "NodeCrash",
]


@dataclass(frozen=True)
class NodeCrash:
    """Crash ``node`` at ``at``; recover after ``downtime`` (None: never)."""

    node: str
    at: float
    downtime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time cannot be negative: {self.at}")
        if self.downtime is not None and self.downtime <= 0:
            raise ValueError(f"downtime must be positive: {self.downtime}")


@dataclass(frozen=True)
class LinkFlap:
    """Take link ``u``--``v`` down at ``at`` for ``downtime`` seconds.

    ``cycles`` > 1 repeats the flap with ``gap`` seconds of uptime between
    cycles — the classic flapping interface.
    """

    u: str
    v: str
    at: float
    downtime: float
    cycles: int = 1
    gap: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"flap time cannot be negative: {self.at}")
        if self.downtime <= 0:
            raise ValueError(f"downtime must be positive: {self.downtime}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1: {self.cycles}")
        if self.gap < 0:
            raise ValueError(f"gap cannot be negative: {self.gap}")


@dataclass(frozen=True)
class AgentOutage:
    """SNMP agents on ``device`` stop answering for ``duration`` seconds."""

    device: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"outage time cannot be negative: {self.at}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")


@dataclass(frozen=True)
class CounterReset:
    """Reboot ``device``'s counters at ``at`` (octet counters restart at 0)."""

    device: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"reset time cannot be negative: {self.at}")


Fault = Union[NodeCrash, LinkFlap, AgentOutage, CounterReset]


class FaultInjector:
    """Schedules and applies faults against one cluster.

    Parameters
    ----------
    cluster:
        The simulated cluster to disturb.
    collector:
        The Remos collector whose agents monitoring-plane faults (agent
        outages, counter resets) act on.  Optional: without it only
        node/link faults are available.

    Every applied fault is appended to :attr:`log` as
    ``(sim_time, kind, target)`` for reports and assertions.  Listeners
    registered with :meth:`subscribe` are called with the same triple as
    each fault or recovery lands — the selection service uses this to
    invalidate its snapshot cache and expire leases on crashed nodes.
    """

    def __init__(
        self,
        cluster: Cluster,
        collector: Optional[Collector] = None,
        tracer=None,
    ) -> None:
        self.cluster = cluster
        self.collector = collector
        #: A :class:`repro.obs.Tracer`: every applied fault also becomes a
        #: trace event — attached *inside* whatever span is currently open
        #: (a grant racing a flap shows up in that request's tree), or as
        #: a standalone root event otherwise.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.log: list[tuple[float, str, str]] = []
        self._listeners: list[Callable[[float, str, str], None]] = []

    def subscribe(self, listener: Callable[[float, str, str], None]) -> None:
        """Call ``listener(sim_time, kind, target)`` on every applied fault.

        Kinds are the :attr:`log` tags: ``node-crash``, ``node-recover``,
        ``link-down``, ``link-up``, ``agent-outage``, ``counter-reset``.
        Listeners run synchronously inside the injecting event; they must
        not raise.
        """
        self._listeners.append(listener)

    # -- immediate primitives ---------------------------------------------------
    def _record(self, kind: str, target: str) -> None:
        now = self.cluster.sim.now
        self.log.append((now, kind, target))
        self.tracer.event(f"fault.{kind}", target=target, t=now)
        for listener in self._listeners:
            listener(now, kind, target)

    def crash_node(self, name: str) -> None:
        """Crash compute node ``name`` right now."""
        self.cluster.fail_node(name)
        self._record("node-crash", name)

    def recover_node(self, name: str) -> None:
        """Recover compute node ``name`` right now."""
        self.cluster.recover_node(name)
        self._record("node-recover", name)

    def fail_link(self, u: str, v: str) -> None:
        """Take link ``u``--``v`` down right now."""
        self.cluster.fabric.fail_link(u, v)
        self._record("link-down", f"{u}--{v}")

    def restore_link(self, u: str, v: str) -> None:
        """Restore link ``u``--``v`` to nominal capacity right now."""
        self.cluster.fabric.restore_link(u, v)
        self._record("link-up", f"{u}--{v}")

    def _agents_for(self, device: str):
        if self.collector is None:
            raise ValueError(
                "monitoring-plane faults need a collector "
                "(FaultInjector(cluster, collector))"
            )
        agents = []
        iface = self.collector.iface_agents.get(device)
        if iface is not None:
            agents.append(iface)
        host = self.collector.host_agents.get(device)
        if host is not None:
            agents.append(host)
        if not agents:
            raise KeyError(f"no agents on device {device!r}")
        return agents

    def silence_agents(self, device: str, duration: float) -> None:
        """Make every agent on ``device`` unresponsive for ``duration`` s."""
        for agent in self._agents_for(device):
            agent.silence_for(duration)
        self._record("agent-outage", device)

    def reset_counters(self, device: str) -> None:
        """Reboot ``device``'s interface counters (restart at zero)."""
        if self.collector is None:
            raise ValueError(
                "monitoring-plane faults need a collector "
                "(FaultInjector(cluster, collector))"
            )
        try:
            agent = self.collector.iface_agents[device]
        except KeyError:
            raise KeyError(f"no interface agent on device {device!r}") from None
        agent.reset_counters()
        self._record("counter-reset", device)

    # -- scheduling -------------------------------------------------------------
    def schedule(self, faults: Iterable[Fault]) -> int:
        """Register a fault plan; each fault fires at its absolute time.

        Returns the number of faults scheduled.  Times in the past (the
        simulation may already have advanced) raise ``ValueError`` —
        injecting history is a scenario bug, not a degraded mode.
        """
        sim = self.cluster.sim
        count = 0
        for fault in faults:
            # Validate targets now, not at fire time, so a bad plan fails
            # loudly at scheduling instead of deep inside the event loop.
            if isinstance(fault, NodeCrash):
                self.cluster.host(fault.node)
                sim.call_at(fault.at, lambda f=fault: self.crash_node(f.node))
                if fault.downtime is not None:
                    sim.call_at(
                        fault.at + fault.downtime,
                        lambda f=fault: self.recover_node(f.node),
                    )
            elif isinstance(fault, LinkFlap):
                self.cluster.graph.link(fault.u, fault.v)
                cycle = fault.downtime + fault.gap
                for i in range(fault.cycles):
                    down_at = fault.at + i * cycle
                    sim.call_at(
                        down_at, lambda f=fault: self.fail_link(f.u, f.v)
                    )
                    sim.call_at(
                        down_at + fault.downtime,
                        lambda f=fault: self.restore_link(f.u, f.v),
                    )
            elif isinstance(fault, AgentOutage):
                self._agents_for(fault.device)
                sim.call_at(
                    fault.at,
                    lambda f=fault: self.silence_agents(f.device, f.duration),
                )
            elif isinstance(fault, CounterReset):
                # Validate the device now, not at fire time.
                self._agents_for(fault.device)
                sim.call_at(
                    fault.at, lambda f=fault: self.reset_counters(f.device)
                )
            else:
                raise TypeError(f"unknown fault {fault!r}")
            count += 1
        return count
