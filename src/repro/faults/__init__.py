"""Fault injection and fault scenarios for the simulated cluster.

The paper's premise is node selection on a *shared, unreliable* network;
this package supplies the unreliability.  :class:`FaultInjector` applies
agent outages, node crashes/recoveries, link flaps and counter resets as
DES events; :func:`random_fault_plan` draws reproducible fault mixes for
experiments.  The hardened collector (:mod:`repro.remos.collector`),
degraded-mode queries (:mod:`repro.remos.api`) and health-aware selection
(:mod:`repro.core.selector`) are exercised against exactly these faults.
"""

from .injector import (
    AgentOutage,
    CounterReset,
    Fault,
    FaultInjector,
    LinkFlap,
    NodeCrash,
)
from .scenario import random_fault_plan

__all__ = [
    "AgentOutage",
    "CounterReset",
    "Fault",
    "FaultInjector",
    "LinkFlap",
    "NodeCrash",
    "random_fault_plan",
]
