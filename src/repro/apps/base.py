"""Application harness shared by the benchmark suite (§4.3).

An :class:`Application` bundles (a) the :class:`ApplicationSpec` it would
hand the selection framework and (b) a message-passing program modelling
its computation/communication structure, runnable on any placement.  The
paper's three applications — 2D FFT, Airshed, MRI — subclass this.

Calibration note: the simulated testbed uses ``base_capacity = 1.0``
ops/second, so application compute demand is expressed directly in
*dedicated-CPU seconds*; parameters are chosen so the unloaded runtimes on
the CMU testbed model land on the paper's reference column (48 s / 150 s /
540 s), which the application tests verify.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..core.spec import ApplicationSpec
from ..des.process import Process
from ..network.cluster import Cluster
from .vmp import Program, RankContext

__all__ = ["Application"]


class Application(ABC):
    """A runnable model of one benchmark application."""

    #: Human-readable name used in tables.
    name: str = "application"
    #: Number of nodes the paper ran this application on.
    num_nodes: int = 1

    @abstractmethod
    def spec(self) -> ApplicationSpec:
        """The specification handed to the node-selection framework."""

    @abstractmethod
    def rank_main(self, ctx: RankContext):
        """Generator executed by every rank (dispatch on ``ctx.rank``)."""

    def launch(self, cluster: Cluster, placement: Sequence[str]) -> Process:
        """Start the application on ``placement``.

        Returns a process whose value is the elapsed execution time in
        simulated seconds.  The placement length must match
        :attr:`num_nodes` — selection produced it for exactly that size.
        """
        if len(placement) != self.num_nodes:
            raise ValueError(
                f"{self.name} needs {self.num_nodes} nodes, "
                f"got placement of {len(placement)}"
            )
        program = Program(cluster, placement)
        return program.run(self.rank_main, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} m={self.num_nodes}>"
