"""The MRI analysis application model (paper §4.3, *epi* dataset, 4 nodes).

Functional-MRI processing (the CMU *Fiasco* pipeline): a master distributes
independent image-processing work items to slave ranks and collects
results.  The protocol is **self-adapting**: a slave on a loaded node or
behind a congested link simply returns results more slowly and is assigned
fewer items, while fast slaves pick up the slack.  That is why the paper
measures only a 25–44% slowdown for MRI where the loosely synchronous codes
suffer ~300% — and why node selection helps it least (8–14%).

:meth:`MRI.paper_config` is calibrated to ≈540 s unloaded at 4 nodes
(1 master + 3 slaves).
"""

from __future__ import annotations

from ..core.spec import ApplicationSpec, CommPattern, Objective
from ..units import MB
from .base import Application
from .vmp import RankContext

__all__ = ["MRI"]


class MRI(Application):
    """Master-slave adaptive work-queue application.

    Parameters
    ----------
    num_nodes:
        Ranks; rank 0 is the master, the rest are slaves.
    items:
        Independent work items (images in the *epi* dataset).
    item_compute_seconds:
        Dedicated-CPU seconds to process one item on a slave.
    item_input_bytes / item_result_bytes:
        Transfer sizes per item (master → slave and back).
    master_overhead_seconds:
        Master CPU time per item (bookkeeping, reassembly).
    """

    name = "MRI"

    def __init__(
        self,
        num_nodes: int = 4,
        items: int = 500,
        item_compute_seconds: float = 3.0,
        item_input_bytes: float = 2 * MB,
        item_result_bytes: float = 1 * MB,
        master_overhead_seconds: float = 0.01,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("MRI needs a master and at least one slave")
        if items < 1:
            raise ValueError("need at least one work item")
        self.num_nodes = num_nodes
        self.items = items
        self.item_compute_seconds = item_compute_seconds
        self.item_input_bytes = item_input_bytes
        self.item_result_bytes = item_result_bytes
        self.master_overhead_seconds = master_overhead_seconds

    @classmethod
    def paper_config(cls) -> "MRI":
        """The paper's run: 4 nodes (3 slaves), ~540 s unloaded."""
        return cls()

    def spec(self) -> ApplicationSpec:
        return ApplicationSpec(
            num_nodes=self.num_nodes,
            pattern=CommPattern.MASTER_SLAVE,
            objective=Objective.BALANCED,
        )

    def rank_main(self, ctx: RankContext):
        if ctx.rank == 0:
            yield from self._master(ctx)
        else:
            yield from self._slave(ctx)

    def _master(self, ctx: RankContext):
        slaves = list(range(1, ctx.size))
        next_item = 0
        outstanding = 0
        # Prime every slave with one item.
        for s in slaves:
            if next_item >= self.items:
                break
            yield ctx.send(s, self.item_input_bytes, tag="work")
            next_item += 1
            outstanding += 1
        done = 0
        while done < self.items:
            msg = yield ctx.recv(tag="result")
            done += 1
            outstanding -= 1
            if self.master_overhead_seconds > 0:
                yield ctx.compute(self.master_overhead_seconds)
            if next_item < self.items:
                # The slave that just answered is idle: keep it fed.
                yield ctx.send(msg.src, self.item_input_bytes, tag="work")
                next_item += 1
                outstanding += 1
        # Shut the slaves down.
        stops = [ctx.send(s, 0, tag="stop") for s in slaves]
        yield ctx.sim.all_of(stops)

    def _slave(self, ctx: RankContext):
        while True:
            msg = yield ctx.recv(src=0)
            if msg.tag == "stop":
                return
            yield ctx.compute(self.item_compute_seconds)
            yield ctx.send(0, self.item_result_bytes, tag="result")
