"""A client-server streaming application (paper §1 motivation).

"Client-server applications may have a choice of machines on which to run
a client, or select from a set of distributed servers."  This model pairs
with the group-placement selector (§3.4): rank 0 is a data server that
streams chunks to every client concurrently; clients decode each chunk
(light compute) and acknowledge.  Throughput is dominated by the
server→client paths — exactly the quantity
:func:`repro.core.select_client_server` optimizes — so placement quality
shows up directly in completion time.
"""

from __future__ import annotations

from ..core.spec import ApplicationSpec, CommPattern, GroupSpec, Objective
from ..units import MB
from .base import Application
from .vmp import RankContext

__all__ = ["StreamingService"]


class StreamingService(Application):
    """One server streaming ``chunks`` chunks to each of the clients.

    Parameters
    ----------
    num_nodes:
        1 server (rank 0) + ``num_nodes - 1`` clients.
    chunks:
        Chunks streamed to each client.
    chunk_bytes:
        Size of one chunk.
    decode_seconds:
        Client CPU per chunk (decode/render).
    window:
        Per-client pipelining depth: the server keeps up to this many
        unacknowledged chunks in flight per client.
    """

    name = "Streaming"

    def __init__(
        self,
        num_nodes: int = 4,
        chunks: int = 32,
        chunk_bytes: float = 4 * MB,
        decode_seconds: float = 0.05,
        window: int = 2,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("need a server and at least one client")
        if chunks < 1:
            raise ValueError("need at least one chunk")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.num_nodes = num_nodes
        self.chunks = chunks
        self.chunk_bytes = chunk_bytes
        self.decode_seconds = decode_seconds
        self.window = window

    def spec(self) -> ApplicationSpec:
        """Declared as a two-group placement: server + clients."""
        return ApplicationSpec(
            pattern=CommPattern.MASTER_SLAVE,
            objective=Objective.BALANCED,
            groups=[
                GroupSpec("server", size=1),
                GroupSpec("clients", size=self.num_nodes - 1),
            ],
        )

    def rank_main(self, ctx: RankContext):
        if ctx.rank == 0:
            yield from self._server(ctx)
        else:
            yield from self._client(ctx)

    def _server(self, ctx: RankContext):
        clients = list(range(1, ctx.size))
        # One independent feeder per client, windowed by acknowledgements.
        feeders = [
            ctx.spawn(self._feed(ctx, client), name=f"feed[{client}]")
            for client in clients
        ]
        yield ctx.sim.all_of(feeders)

    def _feed(self, ctx: RankContext, client: int):
        in_flight = 0
        sent = 0
        acked = 0
        while acked < self.chunks:
            while sent < self.chunks and in_flight < self.window:
                yield ctx.send(client, self.chunk_bytes, tag=f"chunk{client}")
                sent += 1
                in_flight += 1
            yield ctx.recv(src=client, tag=f"ack{client}")
            acked += 1
            in_flight -= 1

    def _client(self, ctx: RankContext):
        for _ in range(self.chunks):
            yield ctx.recv(src=0, tag=f"chunk{ctx.rank}")
            if self.decode_seconds > 0:
                yield ctx.compute(self.decode_seconds)
            yield ctx.send(0, 1024, tag=f"ack{ctx.rank}")
