"""Virtual message passing: an MPI-flavoured layer over the simulated cluster.

The paper's applications are message-passing programs (an HPF/Fx FFT, the
Airshed HPF code, a master-slave MRI pipeline).  To execute their
*communication structure* on the simulated testbed we provide a small
rank-based programming layer: a :class:`Program` places ``size`` ranks onto
compute nodes; each rank is a generator receiving a :class:`RankContext`
with ``compute`` / ``send`` / ``recv`` primitives and the collectives the
applications need (barrier, all-to-all, broadcast, gather).

Point-to-point semantics: ``send`` starts a flow on the fabric and delivers
a message token into the destination rank's mailbox when the last byte
lands (rendezvous-style bulk transfer, which is what these applications
do); ``recv`` blocks until a matching token arrives.  Multiple transfers
progress concurrently and share links max-min fairly, so collective
performance emerges from the topology rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

from ..des.events import Event
from ..des.process import Process
from ..des.resources import Store
from ..network.cluster import Cluster

__all__ = ["Message", "RankContext", "Program"]


@dataclass(frozen=True)
class Message:
    """A delivered message token."""

    src: int
    tag: str
    size_bytes: float


class RankContext:
    """The execution context handed to each rank's generator.

    All methods return DES events (or processes, which are events), so rank
    code composes them freely::

        def worker(ctx):
            yield ctx.compute(1.5e9)
            yield ctx.send(0, 4 * MB, tag="result")
            yield ctx.barrier()
    """

    def __init__(self, program: "Program", rank: int) -> None:
        self.program = program
        self.rank = rank
        self._mailbox: Store = Store(program.cluster.sim)

    # -- identity -----------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the program."""
        return self.program.size

    @property
    def node(self) -> str:
        """The compute node this rank runs on."""
        return self.program.placement[self.rank]

    @property
    def sim(self):
        return self.program.cluster.sim

    # -- primitives ------------------------------------------------------------
    def compute(self, ops: float) -> Event:
        """Execute ``ops`` operations on this rank's host (shared CPU)."""
        return self.program.cluster.compute(self.node, ops).done

    def elapsed(self, seconds: float) -> Event:
        """Plain wall-clock delay (I/O, sleeps — not CPU-shared)."""
        return self.sim.timeout(seconds)

    def send(self, dst: int, size_bytes: float, tag: str = "") -> Event:
        """Transfer ``size_bytes`` to rank ``dst``; fires on delivery.

        Delivery also deposits a :class:`Message` in ``dst``'s mailbox so a
        matching :meth:`recv` completes.
        """
        if not 0 <= dst < self.size:
            raise ValueError(f"invalid destination rank {dst}")
        dst_ctx = self.program.contexts[dst]
        transfer = self.program.cluster.transfer(
            self.node, dst_ctx.node, size_bytes
        )
        done = self.sim.event()

        def _deliver(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev._value)
                return
            dst_ctx._mailbox.put(Message(self.rank, tag, size_bytes))
            done.succeed(ev.value)

        transfer.callbacks.append(_deliver)
        return done

    def recv(self, src: Optional[int] = None, tag: Optional[str] = None) -> Event:
        """Wait for a message (from ``src`` and/or with ``tag`` if given).

        The event's value is the :class:`Message`.
        """

        def match(msg: Message) -> bool:
            if src is not None and msg.src != src:
                return False
            if tag is not None and msg.tag != tag:
                return False
            return True

        return self._mailbox.get(filter=match)

    def spawn(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Run a helper generator as a concurrent sub-process."""
        return self.sim.process(gen, name=name)

    # -- collectives ----------------------------------------------------------
    def barrier(self, tag: str = "__barrier__") -> Process:
        """Synchronize all ranks (centralized gather + release at rank 0)."""

        def _barrier():
            if self.rank == 0:
                for _ in range(self.size - 1):
                    yield self.recv(tag=tag)
                releases = [
                    self.send(r, 0, tag=tag + "/go")
                    for r in range(1, self.size)
                ]
                if releases:
                    yield self.sim.all_of(releases)
            else:
                yield self.send(0, 0, tag=tag)
                yield self.recv(src=0, tag=tag + "/go")

        return self.spawn(_barrier(), name=f"barrier[{self.rank}]")

    def alltoall(self, bytes_per_pair: float, tag: str = "__a2a__") -> Process:
        """Exchange ``bytes_per_pair`` with every other rank, concurrently.

        The transpose step of the 2D FFT and the paper's "all-to-all"
        pattern; completes when this rank has sent to and received from all
        peers.
        """

        def _a2a():
            events = []
            for peer in range(self.size):
                if peer == self.rank:
                    continue
                events.append(self.send(peer, bytes_per_pair, tag=tag))
                events.append(self.recv(src=peer, tag=tag))
            if events:
                yield self.sim.all_of(events)

        return self.spawn(_a2a(), name=f"alltoall[{self.rank}]")

    def bcast(self, root: int, size_bytes: float, tag: str = "__bcast__") -> Process:
        """Root sends ``size_bytes`` to every other rank (flat tree)."""

        def _bcast():
            if self.rank == root:
                sends = [
                    self.send(r, size_bytes, tag=tag)
                    for r in range(self.size)
                    if r != root
                ]
                if sends:
                    yield self.sim.all_of(sends)
            else:
                yield self.recv(src=root, tag=tag)

        return self.spawn(_bcast(), name=f"bcast[{self.rank}]")

    def gather(self, root: int, size_bytes: float, tag: str = "__gather__") -> Process:
        """Every rank sends ``size_bytes`` to root."""

        def _gather():
            if self.rank == root:
                for _ in range(self.size - 1):
                    yield self.recv(tag=tag)
            else:
                yield self.send(root, size_bytes, tag=tag)

        return self.spawn(_gather(), name=f"gather[{self.rank}]")

    def ring_exchange(self, size_bytes: float, tag: str = "__ring__") -> Process:
        """Exchange boundaries with both ring neighbours, concurrently."""

        def _ring():
            left = (self.rank - 1) % self.size
            right = (self.rank + 1) % self.size
            if self.size == 1:
                return
            events = [
                self.send(left, size_bytes, tag=tag + "/l"),
                self.send(right, size_bytes, tag=tag + "/r"),
                self.recv(src=right, tag=tag + "/l"),
                self.recv(src=left, tag=tag + "/r"),
            ]
            yield self.sim.all_of(events)

        return self.spawn(_ring(), name=f"ring[{self.rank}]")


RankFn = Callable[[RankContext], Generator]


class Program:
    """A placed message-passing program.

    Parameters
    ----------
    cluster:
        The simulated cluster to run on.
    placement:
        Compute node name per rank (rank i runs on ``placement[i]``).
        Nodes may repeat (co-located ranks share the host's CPU).
    """

    def __init__(self, cluster: Cluster, placement: Sequence[str]) -> None:
        if not placement:
            raise ValueError("placement must name at least one node")
        for node in placement:
            if node not in cluster.hosts:
                raise KeyError(f"placement names unknown host {node!r}")
        self.cluster = cluster
        self.placement = list(placement)
        self.contexts = [RankContext(self, r) for r in range(len(placement))]

    @property
    def size(self) -> int:
        return len(self.placement)

    def run(self, rank_fn: RankFn, name: str = "program") -> Process:
        """Start every rank; the returned process fires with elapsed seconds.

        ``rank_fn`` is called once per rank with its context.  The program
        completes when all ranks return; a rank raising fails the program.
        """
        sim = self.cluster.sim
        start = sim.now
        procs = [
            sim.process(rank_fn(ctx), name=f"{name}[{ctx.rank}]")
            for ctx in self.contexts
        ]

        def _waiter():
            yield sim.all_of(procs)
            return sim.now - start

        return sim.process(_waiter(), name=f"{name}-waiter")
