"""The 2D FFT application model (paper §4.3, "FFT (1K)", 4 nodes, 32 iters).

A loosely synchronous data-parallel 2D FFT: each iteration performs

1. row FFTs on the locally held slab of the N×N array,
2. a transpose — the all-to-all exchange in which every rank ships
   ``N²/m²`` points to every peer,
3. column FFTs on the transposed slab,

with an iteration barrier (the next iteration consumes the full result).
Because every rank must finish both compute phases and the all-to-all
before anyone proceeds, *any* loaded node or congested link becomes the
iteration bottleneck — which is exactly why the paper sees a ~300% slowdown
under load+traffic on random nodes (§4.3).

:class:`FFT2D.paper_config` is calibrated so the unloaded runtime on the
CMU testbed model is ≈48 s at 4 nodes, the paper's reference time.
"""

from __future__ import annotations

from ..core.spec import ApplicationSpec, CommPattern, Objective
from .base import Application
from .vmp import RankContext

__all__ = ["FFT2D"]


class FFT2D(Application):
    """Loosely synchronous 2D FFT over an N×N complex array.

    Parameters
    ----------
    num_nodes:
        Ranks (= nodes; one rank per node).
    iterations:
        Outer iterations (the paper ran 32).
    n:
        Problem size per dimension (the paper's "1K" = 1024).
    compute_seconds_per_iteration:
        Aggregate dedicated-CPU seconds per iteration across all ranks,
        split evenly between the row and column phases.
    bytes_per_point:
        Storage per array point (16 = double-precision complex).
    """

    name = "FFT (1K)"

    def __init__(
        self,
        num_nodes: int = 4,
        iterations: int = 32,
        n: int = 1024,
        compute_seconds_per_iteration: float = 4.0,
        bytes_per_point: int = 16,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("FFT model needs at least 2 nodes")
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if n % num_nodes != 0:
            raise ValueError(f"n={n} must be divisible by num_nodes={num_nodes}")
        self.num_nodes = num_nodes
        self.iterations = iterations
        self.n = n
        self.compute_seconds_per_iteration = compute_seconds_per_iteration
        self.bytes_per_point = bytes_per_point

    @classmethod
    def paper_config(cls) -> "FFT2D":
        """The paper's run: 1K points, 4 nodes, 32 iterations, ~48 s unloaded."""
        return cls(num_nodes=4, iterations=32, n=1024,
                   compute_seconds_per_iteration=4.0)

    @property
    def transpose_bytes_per_pair(self) -> float:
        """Bytes each rank ships to each peer in one transpose."""
        return self.n * self.n * self.bytes_per_point / self.num_nodes**2

    def spec(self) -> ApplicationSpec:
        return ApplicationSpec(
            num_nodes=self.num_nodes,
            pattern=CommPattern.ALL_TO_ALL,
            objective=Objective.BALANCED,
        )

    def rank_main(self, ctx: RankContext):
        per_phase_ops = (
            self.compute_seconds_per_iteration / (2 * self.num_nodes)
        )
        pair_bytes = self.transpose_bytes_per_pair
        for it in range(self.iterations):
            yield ctx.compute(per_phase_ops)                   # row FFTs
            yield ctx.alltoall(pair_bytes, tag=f"t{it}")        # transpose
            yield ctx.compute(per_phase_ops)                   # column FFTs
            yield ctx.alltoall(pair_bytes, tag=f"u{it}")        # transpose back
            yield ctx.barrier(tag=f"b{it}")                    # loose synchrony
