"""A real distributed 2D FFT, used to validate the FFT application model.

The :class:`~repro.apps.fft.FFT2D` *model* asserts that a slab-decomposed
2D FFT exchanges exactly ``N²/m²`` points between every pair of ranks per
transpose.  This module actually performs the computation the way the
modelled program would — per-rank row FFTs, an explicit block all-to-all
transpose, per-rank column FFTs — using numpy for the 1-D transforms, and
counts the bytes each rank pair exchanges.  Tests check (a) the numerical
result equals ``numpy.fft.fft2`` and (b) the counted communication volume
equals the model's ``transpose_bytes_per_pair``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DistributedFFT2DResult", "distributed_fft2d"]


@dataclass
class DistributedFFT2DResult:
    """Output of the reference distributed FFT."""

    result: np.ndarray
    #: bytes moved from rank i to rank j (i != j) during the transpose
    bytes_sent: dict[tuple[int, int], int]

    def bytes_per_pair(self) -> int:
        """The (uniform) per-ordered-pair transpose volume."""
        volumes = set(self.bytes_sent.values())
        if len(volumes) != 1:
            raise AssertionError(f"non-uniform transpose volumes: {volumes}")
        return volumes.pop()


def distributed_fft2d(a: np.ndarray, ranks: int) -> DistributedFFT2DResult:
    """2D FFT of ``a`` computed with a slab decomposition over ``ranks``.

    Each "rank" owns ``n/ranks`` contiguous rows.  Phase 1 runs row FFTs on
    the local slab; the transpose redistributes columns; phase 2 runs the
    remaining FFTs; a final transpose restores row-major layout.  Byte
    counts assume the array's dtype size.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"need a square 2-D array, got shape {a.shape}")
    n = a.shape[0]
    if n % ranks != 0:
        raise ValueError(f"n={n} must be divisible by ranks={ranks}")
    work = np.asarray(a, dtype=np.complex128)
    rows = n // ranks
    itemsize = work.dtype.itemsize

    # Phase 1: row FFTs on each rank's slab.
    slabs = [
        np.fft.fft(work[r * rows: (r + 1) * rows, :], axis=1)
        for r in range(ranks)
    ]

    # Transpose: rank i sends the block of its slab destined for rank j.
    bytes_sent: dict[tuple[int, int], int] = {}
    recv_slabs = [np.empty((rows, n), dtype=np.complex128) for _ in range(ranks)]
    for i in range(ranks):
        for j in range(ranks):
            block = slabs[i][:, j * rows: (j + 1) * rows]
            # Rank j re-assembles: its slab rows are the transposed block
            # columns, laid at column offset i*rows.
            recv_slabs[j][:, i * rows: (i + 1) * rows] = block.T
            if i != j:
                bytes_sent[(i, j)] = block.size * itemsize

    # Phase 2: the "column" FFTs are row FFTs of the transposed slabs.
    out_slabs = [np.fft.fft(s, axis=1) for s in recv_slabs]

    # Final transpose back to row-major orientation (no counting: the model
    # folds both transposes into its per-iteration all-to-all volume).
    result = np.empty((n, n), dtype=np.complex128)
    for j in range(ranks):
        result[:, j * rows: (j + 1) * rows] = out_slabs[j].T

    return DistributedFFT2DResult(result=result, bytes_sent=bytes_sent)
