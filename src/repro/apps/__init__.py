"""The application suite (paper §4.3) and its message-passing substrate.

Three applications model the paper's benchmarks on the simulated testbed:

- :class:`FFT2D` — loosely synchronous 2D FFT (4 nodes, 32 iterations);
- :class:`Airshed` — multi-phase loosely synchronous pollution model
  (5 nodes, 6 simulated hours);
- :class:`MRI` — self-adapting master-slave image analysis (4 nodes).

They run over :class:`Program`/:class:`RankContext`, a small virtual
message-passing layer whose transfers are real flows on the simulated
fabric, so communication performance emerges from topology and traffic.
"""

from .airshed import Airshed
from .base import Application
from .fft import FFT2D
from .mri import MRI
from .reference_fft import DistributedFFT2DResult, distributed_fft2d
from .stream import StreamingService
from .vmp import Message, Program, RankContext

__all__ = [
    "Airshed",
    "Application",
    "DistributedFFT2DResult",
    "FFT2D",
    "MRI",
    "Message",
    "Program",
    "RankContext",
    "StreamingService",
    "distributed_fft2d",
]
