"""The Airshed pollution model (paper §4.3, 5 nodes, 6-hour simulation).

Airshed [Subhlok et al., IPPS'98] alternates two phases per simulated hour:

- **transport**: advection of pollutants on a 3-D grid — data-parallel
  compute with nearest-neighbour boundary exchanges each step;
- **chemistry**: independent per-cell reaction chemistry — the dominant,
  embarrassingly parallel compute phase;

The two phases want different data layouts (transport is distributed over
horizontal slabs, chemistry over columns), so the HPF code performs an
**array redistribution** — an all-to-all — between them, in both
directions, plus an hourly concentration dump gathered to the master rank.  Like the
FFT it is loosely synchronous: every step waits for the slowest node and
the slowest boundary exchange, so external load/traffic hit hard (the
paper's worst case: +253% on random nodes with both generators on).

:meth:`Airshed.paper_config` is calibrated to ≈150 s unloaded at 5 nodes.
"""

from __future__ import annotations

from ..core.spec import ApplicationSpec, CommPattern, Objective
from ..units import MB
from .base import Application
from .vmp import RankContext

__all__ = ["Airshed"]


class Airshed(Application):
    """Multi-phase loosely synchronous pollution model.

    Parameters
    ----------
    num_nodes:
        Ranks (the paper used 5).
    hours:
        Simulated hours (the paper ran a 6 hour simulation).
    transport_steps:
        Advection steps per hour, each ending in a boundary exchange.
    transport_seconds_per_hour / chemistry_seconds_per_hour:
        Aggregate dedicated-CPU seconds per simulated hour for each phase.
    boundary_bytes:
        Bytes exchanged with each ring neighbour per transport step.
    redistribution_bytes:
        Bytes shipped to each peer in the phase-boundary array
        redistribution (all-to-all), run transport->chemistry and back.
    dump_bytes:
        Bytes each worker gathers to rank 0 at the end of every hour.
    """

    name = "Airshed"

    def __init__(
        self,
        num_nodes: int = 5,
        hours: int = 6,
        transport_steps: int = 4,
        transport_seconds_per_hour: float = 21.0,
        chemistry_seconds_per_hour: float = 36.9,
        boundary_bytes: float = 8 * MB,
        redistribution_bytes: float = 4 * MB,
        dump_bytes: float = 16 * MB,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("Airshed model needs at least 2 nodes")
        if hours < 1:
            raise ValueError("need at least one simulated hour")
        if transport_steps < 1:
            raise ValueError("need at least one transport step per hour")
        self.num_nodes = num_nodes
        self.hours = hours
        self.transport_steps = transport_steps
        self.transport_seconds_per_hour = transport_seconds_per_hour
        self.chemistry_seconds_per_hour = chemistry_seconds_per_hour
        self.boundary_bytes = boundary_bytes
        self.redistribution_bytes = redistribution_bytes
        self.dump_bytes = dump_bytes

    @classmethod
    def paper_config(cls) -> "Airshed":
        """The paper's run: 5 nodes, 6 hours, ~150 s unloaded."""
        return cls()

    def spec(self) -> ApplicationSpec:
        return ApplicationSpec(
            num_nodes=self.num_nodes,
            pattern=CommPattern.RING,
            objective=Objective.BALANCED,
        )

    def rank_main(self, ctx: RankContext):
        transport_ops = (
            self.transport_seconds_per_hour
            / (self.transport_steps * self.num_nodes)
        )
        chemistry_ops = self.chemistry_seconds_per_hour / self.num_nodes
        for hour in range(self.hours):
            for step in range(self.transport_steps):
                yield ctx.compute(transport_ops)
                yield ctx.ring_exchange(
                    self.boundary_bytes, tag=f"h{hour}s{step}"
                )
            # Layout change for chemistry: slabs -> columns.
            yield ctx.alltoall(self.redistribution_bytes, tag=f"r1.{hour}")
            yield ctx.compute(chemistry_ops)
            # ... and back for the next hour's transport.
            yield ctx.alltoall(self.redistribution_bytes, tag=f"r2.{hour}")
            yield ctx.gather(0, self.dump_bytes, tag=f"dump{hour}")
            yield ctx.barrier(tag=f"hour{hour}")
